//! The information model: how much the master is allowed to know.
//!
//! The paper's seven heuristics assume a fully *clairvoyant* master that
//! knows every slave's nominal `(c_j, p_j)` and every task's nominal size
//! exactly. This module withdraws that knowledge in two well-posed steps,
//! following the speed-oblivious model of Lindermayr, Megow & Rapp (SODA
//! 2023) and the non-clairvoyant model of Im, Kulkarni, Munagala & Pruhs
//! (SELFISHMIGRATE, FOCS 2014):
//!
//! * [`InfoTier::Clairvoyant`] — today's behavior, bit for bit: the view
//!   exposes the nominal platform and nominal-size estimates;
//! * [`InfoTier::SpeedOblivious`] — nominal `c_j`/`p_j` are hidden. The
//!   workload model stays known: in the paper's setting every task is
//!   *nominally identical* (unit size — the actual, perturbed sizes are
//!   hidden from **every** tier, the clairvoyant master included), so the
//!   size-normalized observation of a transfer or computation is just its
//!   raw duration, and the master learns per-slave rate estimates
//!   ([`SlaveEstimate`]) from its own event timestamps;
//! * [`InfoTier::NonClairvoyant`] — workload knowledge is withdrawn too:
//!   the view exposes only counts, availability, release observations and
//!   the learned per-slave rates; in particular the total-task-count hint
//!   (`horizon`) disappears, because it is knowledge about unseen work.
//!   (With nominally identical tasks the two sub-clairvoyant tiers learn
//!   from the same observations; schedulers that never read the horizon
//!   behave identically under both.)
//!
//! The tier is carried by [`SimConfig`](crate::SimConfig) and filtered by
//! the [`SimView`](crate::SimView) facade; schedulers declare the weakest
//! tier they stay live under via
//! [`OnlineScheduler::min_tier`](crate::OnlineScheduler::min_tier).

use std::fmt;

/// How much the scheduler's view reveals. Ordered by information content:
/// `NonClairvoyant < SpeedOblivious < Clairvoyant`, so
/// `granted >= required` means "at least as informed as required".
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum InfoTier {
    /// Neither speeds nor workload knowledge: counts, availability and
    /// learned rates only; the horizon hint is withdrawn.
    NonClairvoyant,
    /// Nominal `c_j`/`p_j` are hidden; the (unit-size) workload model is
    /// known, and the view exposes per-slave online estimates learned
    /// from observed send and completion timestamps.
    SpeedOblivious,
    /// Full nominal knowledge — the paper's setting (and the default).
    Clairvoyant,
}

impl InfoTier {
    /// All three tiers, from most to least informed (the order the
    /// `oblivion` experiment reports its columns in).
    pub const ALL: [InfoTier; 3] = [
        InfoTier::Clairvoyant,
        InfoTier::SpeedOblivious,
        InfoTier::NonClairvoyant,
    ];

    /// Stable lower-case label (used by sweep specs and artifacts).
    pub fn label(self) -> &'static str {
        match self {
            InfoTier::Clairvoyant => "clairvoyant",
            InfoTier::SpeedOblivious => "speed-oblivious",
            InfoTier::NonClairvoyant => "non-clairvoyant",
        }
    }

    /// Parses a label (case-insensitive; `_` and `-` are interchangeable).
    pub fn from_label(s: &str) -> Option<InfoTier> {
        let lower = s.to_ascii_lowercase().replace('_', "-");
        InfoTier::ALL.into_iter().find(|t| t.label() == lower)
    }
}

impl fmt::Display for InfoTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One slave's learned estimates, as a value snapshot.
///
/// The fleet's estimates live column-major in [`SlaveEstimates`]; this is
/// the per-slave row that [`SimView::slave_estimate`](crate::SimView::slave_estimate)
/// hands out. Everything in here derives from information any master
/// trivially has: when it started and finished each send (it owns the
/// port), when each completion was reported, and — because sends and
/// computes are FIFO per slave — when each computation must have started
/// (the later of the task's arrival and the previous completion). No
/// nominal platform value ever enters.
///
/// Before the first observation the estimators answer a neutral prior of
/// [`SlaveEstimate::PRIOR`], so estimate-only schedulers start indifferent
/// between slaves and sharpen as completions arrive.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlaveEstimate {
    c_sum: f64,
    c_obs: u32,
    p_sum: f64,
    p_obs: u32,
    computing: bool,
    cur_start: f64,
}

impl SlaveEstimate {
    /// The estimate returned before any observation exists (1.0: all
    /// slaves look identical, like a unit-speed prior).
    pub const PRIOR: f64 = 1.0;

    /// Learned per-task communication time (mean of observed send
    /// durations), or [`SlaveEstimate::PRIOR`] with no observations.
    pub fn c_hat(&self) -> f64 {
        if self.c_obs == 0 {
            SlaveEstimate::PRIOR
        } else {
            self.c_sum / f64::from(self.c_obs)
        }
    }

    /// Learned per-task computation time (mean of observed compute
    /// durations), or [`SlaveEstimate::PRIOR`] with no observations.
    pub fn p_hat(&self) -> f64 {
        if self.p_obs == 0 {
            SlaveEstimate::PRIOR
        } else {
            self.p_sum / f64::from(self.p_obs)
        }
    }

    /// Number of observed send durations.
    pub fn c_observations(&self) -> usize {
        self.c_obs as usize
    }

    /// Number of observed compute durations.
    pub fn p_observations(&self) -> usize {
        self.p_obs as usize
    }

    /// `true` while the master believes the slave is computing (FIFO
    /// inference from its own observations).
    pub fn computing(&self) -> bool {
        self.computing
    }

    /// Observed start of the computation currently believed in progress
    /// (meaningful only while [`SlaveEstimate::computing`]).
    pub fn cur_start(&self) -> f64 {
        self.cur_start
    }
}

/// The fleet's learned estimates, stored column-major (structure of
/// arrays): one contiguous column per statistic, indexed by slave.
///
/// The believed rates [`SlaveEstimates::c_hats`] / [`SlaveEstimates::p_hats`]
/// are *memoized*: each observation recomputes the slave's mean once, at
/// absorb time, so the heuristics' per-decision argmin scans read a dense
/// `f64` slice with no division and no observation-count branch on the hot
/// path. The memoized value is the same `sum / count` division a
/// query-time evaluation would perform, on the same operands — bit-identical
/// by construction ([`SlaveEstimate::c_hat`] on the row snapshot is the
/// oracle).
///
/// Mutators take the slave index; [`SlaveEstimates::get`] materializes the
/// per-slave [`SlaveEstimate`] row for callers that want a value snapshot.
#[derive(Clone, Debug, Default)]
pub struct SlaveEstimates {
    c_sum: Vec<f64>,
    c_obs: Vec<u32>,
    p_sum: Vec<f64>,
    p_obs: Vec<u32>,
    computing: Vec<bool>,
    cur_start: Vec<f64>,
    /// Memoized `c_sum / c_obs` (the prior while `c_obs == 0`).
    c_hat: Vec<f64>,
    /// Memoized `p_sum / p_obs` (the prior while `p_obs == 0`).
    p_hat: Vec<f64>,
}

impl SlaveEstimates {
    /// Fresh columns for `m` slaves, every estimate at the prior.
    pub fn new(m: usize) -> Self {
        let mut e = SlaveEstimates::default();
        e.reset(m);
        e
    }

    /// Re-initializes for `m` slaves, keeping column capacity (the
    /// workspace-reuse path).
    pub fn reset(&mut self, m: usize) {
        for col in [&mut self.c_sum, &mut self.p_sum, &mut self.cur_start] {
            col.clear();
            col.resize(m, 0.0);
        }
        for col in [&mut self.c_obs, &mut self.p_obs] {
            col.clear();
            col.resize(m, 0);
        }
        self.computing.clear();
        self.computing.resize(m, false);
        for col in [&mut self.c_hat, &mut self.p_hat] {
            col.clear();
            col.resize(m, SlaveEstimate::PRIOR);
        }
    }

    /// Number of slaves the columns cover.
    pub fn len(&self) -> usize {
        self.c_sum.len()
    }

    /// `true` iff the columns cover no slave.
    pub fn is_empty(&self) -> bool {
        self.c_sum.is_empty()
    }

    /// Value snapshot of slave `j`'s row.
    pub fn get(&self, j: usize) -> SlaveEstimate {
        SlaveEstimate {
            c_sum: self.c_sum[j],
            c_obs: self.c_obs[j],
            p_sum: self.p_sum[j],
            p_obs: self.p_obs[j],
            computing: self.computing[j],
            cur_start: self.cur_start[j],
        }
    }

    /// The believed per-task communication times, one dense slot per slave.
    pub fn c_hats(&self) -> &[f64] {
        &self.c_hat
    }

    /// The believed per-task computation times, one dense slot per slave.
    pub fn p_hats(&self) -> &[f64] {
        &self.p_hat
    }

    /// `true` while the master believes slave `j` is computing.
    pub fn is_computing(&self, j: usize) -> bool {
        self.computing[j]
    }

    /// Observed start of slave `j`'s believed-current computation
    /// (meaningful only while [`SlaveEstimates::is_computing`]).
    pub fn cur_start(&self, j: usize) -> f64 {
        self.cur_start[j]
    }

    /// Absorbs an observed send duration for slave `j`.
    pub fn observe_send(&mut self, j: usize, duration: f64) {
        self.c_sum[j] += duration;
        self.c_obs[j] += 1;
        self.c_hat[j] = self.c_sum[j] / f64::from(self.c_obs[j]);
    }

    /// Absorbs an observed compute duration for slave `j`.
    pub fn observe_compute(&mut self, j: usize, duration: f64) {
        self.p_sum[j] += duration;
        self.p_obs[j] += 1;
        self.p_hat[j] = self.p_sum[j] / f64::from(self.p_obs[j]);
    }

    /// Records that slave `j` is believed to have started computing at `at`.
    pub fn begin_compute(&mut self, j: usize, at: f64) {
        self.computing[j] = true;
        self.cur_start[j] = at;
    }

    /// Records that slave `j`'s believed-current computation ended.
    pub fn end_compute(&mut self, j: usize) {
        self.computing[j] = false;
        self.cur_start[j] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered_by_information() {
        assert!(InfoTier::NonClairvoyant < InfoTier::SpeedOblivious);
        assert!(InfoTier::SpeedOblivious < InfoTier::Clairvoyant);
        assert_eq!(InfoTier::ALL[0], InfoTier::Clairvoyant);
    }

    #[test]
    fn labels_round_trip() {
        for t in InfoTier::ALL {
            assert_eq!(InfoTier::from_label(t.label()), Some(t));
            assert_eq!(InfoTier::from_label(&t.label().to_uppercase()), Some(t));
        }
        assert_eq!(
            InfoTier::from_label("speed_oblivious"),
            Some(InfoTier::SpeedOblivious)
        );
        assert_eq!(InfoTier::from_label("psychic"), None);
    }

    #[test]
    fn estimates_start_at_the_prior_and_average_observations() {
        let mut e = SlaveEstimates::new(2);
        assert_eq!(e.len(), 2);
        assert_eq!(e.c_hats(), [SlaveEstimate::PRIOR; 2]);
        assert_eq!(e.p_hats(), [SlaveEstimate::PRIOR; 2]);
        e.observe_send(0, 2.0);
        e.observe_send(0, 4.0);
        e.observe_compute(0, 10.0);
        assert_eq!(e.c_hats()[0], 3.0);
        assert_eq!(e.p_hats()[0], 10.0);
        // Slave 1 saw nothing: still the prior.
        assert_eq!(e.c_hats()[1], SlaveEstimate::PRIOR);
        let row = e.get(0);
        assert_eq!(row.c_observations(), 2);
        assert_eq!(row.p_observations(), 1);
        // The memoized column and the row snapshot's query-time division
        // agree bit for bit (the memoization contract).
        assert_eq!(e.c_hats()[0].to_bits(), row.c_hat().to_bits());
        assert_eq!(e.p_hats()[0].to_bits(), row.p_hat().to_bits());
    }

    #[test]
    fn compute_tracking_toggles() {
        let mut e = SlaveEstimates::new(1);
        assert!(!e.is_computing(0));
        e.begin_compute(0, 5.0);
        assert!(e.is_computing(0));
        assert_eq!(e.cur_start(0), 5.0);
        assert!(e.get(0).computing());
        assert_eq!(e.get(0).cur_start(), 5.0);
        e.end_compute(0);
        assert!(!e.is_computing(0));
    }

    #[test]
    fn reset_returns_every_column_to_the_prior() {
        let mut e = SlaveEstimates::new(1);
        e.observe_send(0, 7.0);
        e.begin_compute(0, 3.0);
        e.reset(3);
        assert_eq!(e.len(), 3);
        assert_eq!(e.c_hats(), [SlaveEstimate::PRIOR; 3]);
        assert!(!e.is_computing(0));
        assert_eq!(e.get(0).c_observations(), 0);
    }
}
