//! The information model: how much the master is allowed to know.
//!
//! The paper's seven heuristics assume a fully *clairvoyant* master that
//! knows every slave's nominal `(c_j, p_j)` and every task's nominal size
//! exactly. This module withdraws that knowledge in two well-posed steps,
//! following the speed-oblivious model of Lindermayr, Megow & Rapp (SODA
//! 2023) and the non-clairvoyant model of Im, Kulkarni, Munagala & Pruhs
//! (SELFISHMIGRATE, FOCS 2014):
//!
//! * [`InfoTier::Clairvoyant`] — today's behavior, bit for bit: the view
//!   exposes the nominal platform and nominal-size estimates;
//! * [`InfoTier::SpeedOblivious`] — nominal `c_j`/`p_j` are hidden. The
//!   workload model stays known: in the paper's setting every task is
//!   *nominally identical* (unit size — the actual, perturbed sizes are
//!   hidden from **every** tier, the clairvoyant master included), so the
//!   size-normalized observation of a transfer or computation is just its
//!   raw duration, and the master learns per-slave rate estimates
//!   ([`SlaveEstimate`]) from its own event timestamps;
//! * [`InfoTier::NonClairvoyant`] — workload knowledge is withdrawn too:
//!   the view exposes only counts, availability, release observations and
//!   the learned per-slave rates; in particular the total-task-count hint
//!   (`horizon`) disappears, because it is knowledge about unseen work.
//!   (With nominally identical tasks the two sub-clairvoyant tiers learn
//!   from the same observations; schedulers that never read the horizon
//!   behave identically under both.)
//!
//! The tier is carried by [`SimConfig`](crate::SimConfig) and filtered by
//! the [`SimView`](crate::SimView) facade; schedulers declare the weakest
//! tier they stay live under via
//! [`OnlineScheduler::min_tier`](crate::OnlineScheduler::min_tier).

use std::fmt;

/// How much the scheduler's view reveals. Ordered by information content:
/// `NonClairvoyant < SpeedOblivious < Clairvoyant`, so
/// `granted >= required` means "at least as informed as required".
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum InfoTier {
    /// Neither speeds nor workload knowledge: counts, availability and
    /// learned rates only; the horizon hint is withdrawn.
    NonClairvoyant,
    /// Nominal `c_j`/`p_j` are hidden; the (unit-size) workload model is
    /// known, and the view exposes per-slave online estimates learned
    /// from observed send and completion timestamps.
    SpeedOblivious,
    /// Full nominal knowledge — the paper's setting (and the default).
    Clairvoyant,
}

impl InfoTier {
    /// All three tiers, from most to least informed (the order the
    /// `oblivion` experiment reports its columns in).
    pub const ALL: [InfoTier; 3] = [
        InfoTier::Clairvoyant,
        InfoTier::SpeedOblivious,
        InfoTier::NonClairvoyant,
    ];

    /// Stable lower-case label (used by sweep specs and artifacts).
    pub fn label(self) -> &'static str {
        match self {
            InfoTier::Clairvoyant => "clairvoyant",
            InfoTier::SpeedOblivious => "speed-oblivious",
            InfoTier::NonClairvoyant => "non-clairvoyant",
        }
    }

    /// Parses a label (case-insensitive; `_` and `-` are interchangeable).
    pub fn from_label(s: &str) -> Option<InfoTier> {
        let lower = s.to_ascii_lowercase().replace('_', "-");
        InfoTier::ALL.into_iter().find(|t| t.label() == lower)
    }
}

impl fmt::Display for InfoTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-slave estimates the master learns from its own observable event
/// timestamps — the raw material of the sub-clairvoyant tiers.
///
/// Everything in here derives from information any master trivially has:
/// when it started and finished each send (it owns the port), when each
/// completion was reported, and — because sends and computes are FIFO per
/// slave — when each computation must have started (the later of the
/// task's arrival and the previous completion). No nominal platform value
/// ever enters.
///
/// Before the first observation the estimators answer a neutral prior of
/// [`SlaveEstimate::PRIOR`], so estimate-only schedulers start indifferent
/// between slaves and sharpen as completions arrive.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlaveEstimate {
    c_sum: f64,
    c_obs: u32,
    p_sum: f64,
    p_obs: u32,
    computing: bool,
    cur_start: f64,
}

impl SlaveEstimate {
    /// The estimate returned before any observation exists (1.0: all
    /// slaves look identical, like a unit-speed prior).
    pub const PRIOR: f64 = 1.0;

    /// Learned per-task communication time (mean of observed send
    /// durations), or [`SlaveEstimate::PRIOR`] with no observations.
    pub fn c_hat(&self) -> f64 {
        if self.c_obs == 0 {
            SlaveEstimate::PRIOR
        } else {
            self.c_sum / f64::from(self.c_obs)
        }
    }

    /// Learned per-task computation time (mean of observed compute
    /// durations), or [`SlaveEstimate::PRIOR`] with no observations.
    pub fn p_hat(&self) -> f64 {
        if self.p_obs == 0 {
            SlaveEstimate::PRIOR
        } else {
            self.p_sum / f64::from(self.p_obs)
        }
    }

    /// Number of observed send durations.
    pub fn c_observations(&self) -> usize {
        self.c_obs as usize
    }

    /// Number of observed compute durations.
    pub fn p_observations(&self) -> usize {
        self.p_obs as usize
    }

    /// `true` while the master believes the slave is computing (FIFO
    /// inference from its own observations).
    pub fn computing(&self) -> bool {
        self.computing
    }

    /// Observed start of the computation currently believed in progress
    /// (meaningful only while [`SlaveEstimate::computing`]).
    pub fn cur_start(&self) -> f64 {
        self.cur_start
    }

    pub(crate) fn observe_send(&mut self, duration: f64) {
        self.c_sum += duration;
        self.c_obs += 1;
    }

    pub(crate) fn observe_compute(&mut self, duration: f64) {
        self.p_sum += duration;
        self.p_obs += 1;
    }

    pub(crate) fn begin_compute(&mut self, at: f64) {
        self.computing = true;
        self.cur_start = at;
    }

    pub(crate) fn end_compute(&mut self) {
        self.computing = false;
        self.cur_start = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered_by_information() {
        assert!(InfoTier::NonClairvoyant < InfoTier::SpeedOblivious);
        assert!(InfoTier::SpeedOblivious < InfoTier::Clairvoyant);
        assert_eq!(InfoTier::ALL[0], InfoTier::Clairvoyant);
    }

    #[test]
    fn labels_round_trip() {
        for t in InfoTier::ALL {
            assert_eq!(InfoTier::from_label(t.label()), Some(t));
            assert_eq!(InfoTier::from_label(&t.label().to_uppercase()), Some(t));
        }
        assert_eq!(
            InfoTier::from_label("speed_oblivious"),
            Some(InfoTier::SpeedOblivious)
        );
        assert_eq!(InfoTier::from_label("psychic"), None);
    }

    #[test]
    fn estimates_start_at_the_prior_and_average_observations() {
        let mut e = SlaveEstimate::default();
        assert_eq!(e.c_hat(), SlaveEstimate::PRIOR);
        assert_eq!(e.p_hat(), SlaveEstimate::PRIOR);
        e.observe_send(2.0);
        e.observe_send(4.0);
        e.observe_compute(10.0);
        assert_eq!(e.c_hat(), 3.0);
        assert_eq!(e.p_hat(), 10.0);
        assert_eq!(e.c_observations(), 2);
        assert_eq!(e.p_observations(), 1);
    }

    #[test]
    fn compute_tracking_toggles() {
        let mut e = SlaveEstimate::default();
        assert!(!e.computing());
        e.begin_compute(5.0);
        assert!(e.computing());
        assert_eq!(e.cur_start(), 5.0);
        e.end_compute();
        assert!(!e.computing());
    }
}
