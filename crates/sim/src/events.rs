//! Platform events: the dynamic-platform timeline the engine can consume.
//!
//! The paper's model is *static*: each slave's `(c_j, p_j)` is fixed for the
//! whole run. A [`Timeline`] relaxes that: it is a finite, time-ordered list
//! of [`PlatformEvent`]s — slave crashes, recoveries, and link/speed drift —
//! that the engine applies while simulating. The semantics are:
//!
//! * **[`PlatformEventKind::Fail`]** — the slave goes down. Every task
//!   outstanding on it (queued, computing, or mid-transfer towards it) is
//!   *lost*: it reappears in the master's pending queue and must be re-sent.
//!   A transfer in flight to the failing slave is aborted and the master's
//!   port frees immediately.
//! * **[`PlatformEventKind::Recover`]** — the slave comes back up, empty.
//!   Sends that complete while a slave is down are lost on arrival (the
//!   master may gamble on a recovery mid-transfer and win).
//! * **[`PlatformEventKind::SetLinkFactor`]** / **[`PlatformEventKind::SetSpeedFactor`]**
//!   — set the slave's *effective* `c_j` / `p_j` to `factor ×` its nominal
//!   value, for operations **starting from now on** (in-flight transfers and
//!   running computations keep the rate they started with). Factors are
//!   absolute, not compounding: a random-walk drift emits the walk's current
//!   position each step.
//!
//! Determinism: timeline events enter the engine's event heap after all task
//! releases, so the `(time, insertion-seq)` processing order — and therefore
//! every trace — is a pure function of `(platform, tasks, timeline,
//! scheduler)`. An empty timeline leaves the engine's behaviour bit-for-bit
//! identical to the static model.

use crate::platform::SlaveId;
use crate::time::Time;

/// What happens to a slave at a timeline instant.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PlatformEventKind {
    /// The slave crashes; its in-flight and queued work is lost.
    Fail,
    /// The slave comes back up, empty.
    Recover,
    /// Effective `c_j` becomes `factor ×` nominal for future sends.
    SetLinkFactor(f64),
    /// Effective `p_j` becomes `factor ×` nominal for future computations.
    SetSpeedFactor(f64),
}

/// One scheduled change of the platform.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlatformEvent {
    /// When the change happens.
    pub time: Time,
    /// Which slave it affects.
    pub slave: SlaveId,
    /// What changes.
    pub kind: PlatformEventKind,
}

/// A finite, time-ordered platform-event script.
///
/// Construction sorts events stably by time, so simultaneous events keep
/// their insertion order — the same tie-break rule the engine applies.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Timeline {
    events: Vec<PlatformEvent>,
}

impl Timeline {
    /// The static (empty) timeline.
    pub const EMPTY: Timeline = Timeline { events: Vec::new() };

    /// Builds a timeline, stably sorting events by time.
    ///
    /// # Panics
    /// Panics if any event has a negative time or a non-positive /
    /// non-finite drift factor (always a bug in the producing generator).
    pub fn new(mut events: Vec<PlatformEvent>) -> Self {
        for e in &events {
            assert!(
                e.time >= Time::ZERO,
                "Timeline::new: event before t = 0: {e:?}"
            );
            if let PlatformEventKind::SetLinkFactor(f) | PlatformEventKind::SetSpeedFactor(f) =
                e.kind
            {
                assert!(
                    f.is_finite() && f > 0.0,
                    "Timeline::new: non-positive or non-finite drift factor: {e:?}"
                );
            }
        }
        events.sort_by_key(|e| e.time);
        Timeline { events }
    }

    /// The events, in time order.
    pub fn events(&self) -> &[PlatformEvent] {
        &self.events
    }

    /// `true` iff the timeline contains no event (the static model).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Per-slave downtime intervals `[start, end)` over `[0, until]`,
    /// suitable for [`render_with_downtime`](crate::render_with_downtime).
    ///
    /// A slave failed and never recovered is down until `until`; redundant
    /// `Fail`s/`Recover`s (already down / already up) are ignored, exactly
    /// as the engine ignores them.
    pub fn downtime_intervals(&self, num_slaves: usize, until: f64) -> Vec<Vec<(f64, f64)>> {
        let mut intervals = vec![Vec::new(); num_slaves];
        let mut down_since: Vec<Option<f64>> = vec![None; num_slaves];
        for e in &self.events {
            if e.slave.0 >= num_slaves {
                continue;
            }
            match e.kind {
                PlatformEventKind::Fail if down_since[e.slave.0].is_none() => {
                    down_since[e.slave.0] = Some(e.time.as_f64());
                }
                PlatformEventKind::Recover => {
                    if let Some(start) = down_since[e.slave.0].take() {
                        if e.time.as_f64() > start {
                            intervals[e.slave.0].push((start, e.time.as_f64()));
                        }
                    }
                }
                _ => {}
            }
        }
        for (j, since) in down_since.into_iter().enumerate() {
            if let Some(start) = since {
                if until > start {
                    intervals[j].push((start, until));
                }
            }
        }
        intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, slave: usize, kind: PlatformEventKind) -> PlatformEvent {
        PlatformEvent {
            time: Time::new(time),
            slave: SlaveId(slave),
            kind,
        }
    }

    #[test]
    fn sorts_stably_by_time() {
        let t = Timeline::new(vec![
            ev(5.0, 1, PlatformEventKind::Recover),
            ev(2.0, 0, PlatformEventKind::Fail),
            ev(5.0, 0, PlatformEventKind::Fail),
        ]);
        let times: Vec<f64> = t.events().iter().map(|e| e.time.as_f64()).collect();
        assert_eq!(times, vec![2.0, 5.0, 5.0]);
        // Ties keep insertion order: P2's recovery was inserted first.
        assert_eq!(t.events()[1].slave, SlaveId(1));
    }

    #[test]
    fn empty_is_static() {
        assert!(Timeline::EMPTY.is_empty());
        assert_eq!(Timeline::default(), Timeline::EMPTY);
        assert_eq!(Timeline::EMPTY.len(), 0);
    }

    #[test]
    fn downtime_intervals_pair_fail_and_recover() {
        let t = Timeline::new(vec![
            ev(1.0, 0, PlatformEventKind::Fail),
            ev(3.0, 0, PlatformEventKind::Recover),
            ev(2.0, 1, PlatformEventKind::Fail),
            ev(4.0, 0, PlatformEventKind::Fail), // never recovers
        ]);
        let d = t.downtime_intervals(2, 10.0);
        assert_eq!(d[0], vec![(1.0, 3.0), (4.0, 10.0)]);
        assert_eq!(d[1], vec![(2.0, 10.0)]);
    }

    #[test]
    fn redundant_events_ignored() {
        let t = Timeline::new(vec![
            ev(1.0, 0, PlatformEventKind::Fail),
            ev(2.0, 0, PlatformEventKind::Fail), // already down
            ev(3.0, 0, PlatformEventKind::Recover),
            ev(4.0, 0, PlatformEventKind::Recover), // already up
        ]);
        assert_eq!(t.downtime_intervals(1, 5.0)[0], vec![(1.0, 3.0)]);
    }

    #[test]
    fn round_trips_through_json() {
        let t = Timeline::new(vec![
            ev(1.0, 0, PlatformEventKind::SetSpeedFactor(1.5)),
            ev(2.0, 1, PlatformEventKind::Fail),
        ]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn rejects_bad_factor() {
        let _ = Timeline::new(vec![ev(1.0, 0, PlatformEventKind::SetLinkFactor(0.0))]);
    }
}
