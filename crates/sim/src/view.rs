//! The scheduler's window into the simulation.
//!
//! [`SimView`] exposes exactly the information an on-line master would have:
//! the current time, the platform's *nominal* `(c_j, p_j)`, which released
//! tasks still need a slave, how much work each slave has outstanding, and
//! nominal-size completion estimates. Unreleased tasks and actual (perturbed)
//! sizes of unfinished work are invisible.

use crate::platform::{Platform, SlaveId};
use crate::task::TaskId;
use crate::time::Time;

/// Per-slave observable state (snapshot).
#[derive(Clone, Copy, Debug)]
pub struct SlaveView {
    /// Tasks sent (or being sent) to this slave and not yet completed.
    pub outstanding: usize,
    /// Estimated time at which the slave finishes all outstanding work,
    /// computed with nominal sizes and re-anchored on every observed
    /// completion. Equals `now` for an idle slave.
    pub ready_estimate: Time,
    /// Total number of tasks completed by this slave so far.
    pub completed: usize,
    /// `false` while the slave is failed (scenario timelines; always `true`
    /// on a static platform). The master observes failures, so availability
    /// is part of the on-line information model.
    pub available: bool,
}

/// Owned observable state from which a [`SimView`] can be borrowed.
///
/// The DES engine builds views internally; alternative backends (the
/// threaded cluster executor of `mss-cluster`, custom harnesses, tests)
/// maintain a `ViewState` and call [`ViewState::view`] to drive any
/// [`OnlineScheduler`](crate::OnlineScheduler) outside the simulator.
#[derive(Clone, Debug)]
pub struct ViewState {
    /// Current time.
    pub now: Time,
    /// The (nominal) platform.
    pub platform: Platform,
    /// When the master's port frees (≤ `now` when idle).
    pub link_busy_until: Time,
    /// Per-slave observable state.
    pub slaves: Vec<SlaveView>,
    /// Released, unassigned tasks in FIFO order.
    pub pending: Vec<TaskId>,
    /// Release time per task id (only entries for released tasks are read).
    pub releases: Vec<Time>,
    /// Total-task-count hint, if granted.
    pub horizon: Option<usize>,
    /// Number of tasks released so far.
    pub released_count: usize,
    /// Number of tasks completed so far.
    pub completed_count: usize,
}

impl ViewState {
    /// Fresh state at time zero for a platform.
    pub fn new(platform: Platform, num_tasks: usize, horizon: Option<usize>) -> Self {
        let m = platform.num_slaves();
        ViewState {
            now: Time::ZERO,
            platform,
            link_busy_until: Time::ZERO,
            slaves: vec![
                SlaveView {
                    outstanding: 0,
                    ready_estimate: Time::ZERO,
                    completed: 0,
                    available: true,
                };
                m
            ],
            pending: Vec::new(),
            releases: vec![Time::ZERO; num_tasks],
            horizon,
            released_count: 0,
            completed_count: 0,
        }
    }

    /// Borrows the state as the view schedulers consume.
    pub fn view(&self) -> SimView<'_> {
        SimView {
            now: self.now,
            platform: &self.platform,
            link_busy_until: self.link_busy_until,
            slaves: &self.slaves,
            pending: &self.pending,
            releases: &self.releases,
            horizon: self.horizon,
            released_count: self.released_count,
            completed_count: self.completed_count,
        }
    }
}

/// Immutable snapshot handed to [`OnlineScheduler`](crate::OnlineScheduler)
/// callbacks.
///
/// Inside the engine this is a pure borrow of incrementally maintained
/// state — constructing and reading a view allocates nothing. Outside the
/// engine, borrow one from an owned [`ViewState`]:
///
/// ```
/// use mss_sim::{Platform, SlaveId, TaskId, Time, ViewState};
///
/// let mut state = ViewState::new(Platform::from_vectors(&[1.0, 2.0], &[3.0, 5.0]), 4, None);
/// state.pending.push(TaskId(0));
/// state.released_count = 1;
/// let view = state.view();
/// assert_eq!(view.num_slaves(), 2);
/// assert_eq!(view.pending_tasks(), &[TaskId(0)]);
/// assert!(view.link_idle());
/// // Both slaves are idle: a new task finishes at c_j + p_j.
/// assert_eq!(view.completion_estimate(SlaveId(0)), Time::new(4.0));
/// assert_eq!(view.completion_estimate(SlaveId(1)), Time::new(7.0));
/// ```
pub struct SimView<'a> {
    pub(crate) now: Time,
    pub(crate) platform: &'a Platform,
    pub(crate) link_busy_until: Time,
    pub(crate) slaves: &'a [SlaveView],
    pub(crate) pending: &'a [TaskId],
    pub(crate) releases: &'a [Time],
    pub(crate) horizon: Option<usize>,
    pub(crate) released_count: usize,
    pub(crate) completed_count: usize,
}

impl<'a> SimView<'a> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The platform (nominal `c_j`, `p_j`).
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Number of slaves.
    pub fn num_slaves(&self) -> usize {
        self.platform.num_slaves()
    }

    /// When the master's port is next free (`== now()` if idle).
    ///
    /// # Examples
    /// ```
    /// use mss_sim::{Platform, Time, ViewState};
    /// let mut state = ViewState::new(Platform::from_vectors(&[1.0], &[2.0]), 1, None);
    /// state.now = Time::new(3.0);
    /// state.link_busy_until = Time::new(5.0);
    /// assert_eq!(state.view().link_free_at(), Time::new(5.0));
    /// assert!(!state.view().link_idle());
    /// ```
    pub fn link_free_at(&self) -> Time {
        self.link_busy_until.max(self.now)
    }

    /// `true` iff the port is idle right now.
    pub fn link_idle(&self) -> bool {
        self.link_busy_until <= self.now
    }

    /// Released tasks not yet assigned to any slave, in FIFO release order.
    ///
    /// # Examples
    /// ```
    /// use mss_sim::{Platform, TaskId, ViewState};
    /// let mut state = ViewState::new(Platform::from_vectors(&[1.0], &[2.0]), 2, None);
    /// state.pending.extend([TaskId(1), TaskId(0)]); // FIFO: release order, not id order
    /// assert_eq!(state.view().pending_tasks().first(), Some(&TaskId(1)));
    /// ```
    pub fn pending_tasks(&self) -> &[TaskId] {
        self.pending
    }

    /// Release time of a task that has already been released.
    pub fn release_time(&self, t: TaskId) -> Time {
        self.releases[t.0]
    }

    /// Observable state of slave `j`.
    ///
    /// # Examples
    /// ```
    /// use mss_sim::{Platform, SlaveId, Time, ViewState};
    /// let mut state = ViewState::new(Platform::from_vectors(&[1.0], &[2.0]), 0, None);
    /// state.slaves[0].outstanding = 3;
    /// state.slaves[0].ready_estimate = Time::new(9.0);
    /// let view = state.view();
    /// assert_eq!(view.slave(SlaveId(0)).outstanding, 3);
    /// assert!(!view.slave_idle(SlaveId(0)));
    /// ```
    pub fn slave(&self, j: SlaveId) -> SlaveView {
        self.slaves[j.0]
    }

    /// `true` iff slave `j` has no outstanding work at all (SRPT's notion of
    /// a *free* slave).
    pub fn slave_idle(&self, j: SlaveId) -> bool {
        self.slaves[j.0].outstanding == 0
    }

    /// `true` iff slave `j` is up (not failed). Always `true` on a static
    /// platform.
    pub fn slave_available(&self, j: SlaveId) -> bool {
        self.slaves[j.0].available
    }

    /// Ids of the currently available (up) slaves, in index order.
    ///
    /// # Examples
    /// ```
    /// use mss_sim::{Platform, SlaveId, ViewState};
    /// let mut state = ViewState::new(Platform::from_vectors(&[1.0, 1.0], &[2.0, 3.0]), 0, None);
    /// state.slaves[0].available = false; // P1 is down
    /// let view = state.view();
    /// assert!(!view.slave_available(SlaveId(0)));
    /// assert_eq!(view.available_slaves().collect::<Vec<_>>(), vec![SlaveId(1)]);
    /// ```
    pub fn available_slaves(&self) -> impl Iterator<Item = SlaveId> + '_ {
        self.slaves
            .iter()
            .enumerate()
            .filter(|(_, s)| s.available)
            .map(|(j, _)| SlaveId(j))
    }

    /// Estimated completion time of a *new nominal task* if the master
    /// started sending it to `j` as soon as the port is free:
    /// `start = max(link_free, ready_j_estimate_after_comm)`, i.e.
    /// `max(link_free + c_j, ready_j) + p_j`.
    ///
    /// This is the quantity the paper's List Scheduling heuristic minimizes.
    pub fn completion_estimate(&self, j: SlaveId) -> Time {
        let recv = self.link_free_at() + self.platform.c(j);
        let start = recv.max(self.slaves[j.0].ready_estimate);
        start + self.platform.p(j)
    }

    /// Total number of tasks the instance will ever contain, when the
    /// scheduler has been granted that knowledge (the paper gives it to SLJF
    /// and SLJFWC); `None` in the pure on-line setting.
    pub fn horizon(&self) -> Option<usize> {
        self.horizon
    }

    /// How many tasks have been released so far.
    pub fn released_count(&self) -> usize {
        self.released_count
    }

    /// How many tasks have completed so far.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }
}
