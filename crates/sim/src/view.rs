//! The scheduler's window into the simulation.
//!
//! This module is split into a **raw observable core** and a
//! **tier-filtering facade**:
//!
//! * the raw core is what any master trivially observes regardless of
//!   information model — the clock, the state of its own port, released
//!   tasks and their release times, per-slave counts and availability
//!   ([`SlaveView`]), and the learned per-slave rate estimates
//!   ([`SlaveEstimate`]) distilled from its own event timestamps;
//! * the facade is [`SimView`]: every accessor that involves privileged
//!   knowledge — the nominal platform, nominal-size ready/completion
//!   estimates, the total-task-count hint — dispatches on the view's
//!   [`InfoTier`] and answers from nominal values at
//!   [`InfoTier::Clairvoyant`] (bit-identical to the historical,
//!   pre-information-model view) or from learned estimates below it.
//!
//! Unreleased tasks and actual (perturbed) sizes of unfinished work are
//! invisible at *every* tier.

use crate::info::{InfoTier, SlaveEstimate, SlaveEstimates};
use crate::kernel::TouchJournal;
use crate::platform::{Platform, SlaveId};
use crate::task::TaskId;
use crate::time::Time;

/// One slave's observable state, as a value snapshot — the per-slave row
/// of [`SlaveViews`], handed out by [`SimView::slave`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SlaveView {
    /// Tasks sent (or being sent) to this slave and not yet completed.
    pub outstanding: usize,
    /// Estimated time at which the slave finishes all outstanding work.
    /// At [`InfoTier::Clairvoyant`] this is computed with nominal sizes and
    /// re-anchored on every observed completion; below it, from the learned
    /// per-slave rates. Equals `now` for an idle slave.
    pub ready_estimate: Time,
    /// Total number of tasks completed by this slave so far.
    pub completed: usize,
    /// `false` while the slave is failed (scenario timelines; always `true`
    /// on a static platform). The master observes failures, so availability
    /// is part of the on-line information model at every tier.
    pub available: bool,
}

/// The fleet's observable state, stored column-major (structure of
/// arrays): one contiguous column per [`SlaveView`] field, indexed by
/// slave.
///
/// The columns are public and maintained directly — the DES engine writes
/// them in `recompute_view`, the `mss-cluster` executor and custom
/// harnesses write them through an owned [`ViewState`]. Keeping
/// `ready_estimate` as a dense `f64` column (rather than an array of
/// structs) means the heuristics' per-decision argmin scans — SRPT's
/// idle-slave ranking, List Scheduling's completion-estimate
/// minimization — traverse contiguous same-typed memory.
#[derive(Clone, Debug, Default)]
pub struct SlaveViews {
    /// Tasks sent (or being sent) to each slave and not yet completed.
    pub outstanding: Vec<usize>,
    /// Per-slave ready estimates, in seconds ([`SlaveView::ready_estimate`]
    /// as its raw `f64`).
    pub ready_estimate: Vec<f64>,
    /// Total tasks completed by each slave so far.
    pub completed: Vec<usize>,
    /// Per-slave availability (`false` while failed).
    pub available: Vec<bool>,
}

impl SlaveViews {
    /// Fresh columns for `m` idle, available slaves at time zero.
    pub fn new(m: usize) -> Self {
        let mut v = SlaveViews::default();
        v.reset(m);
        v
    }

    /// Re-initializes for `m` slaves, keeping column capacity (the
    /// workspace-reuse path).
    pub fn reset(&mut self, m: usize) {
        self.outstanding.clear();
        self.outstanding.resize(m, 0);
        self.ready_estimate.clear();
        self.ready_estimate.resize(m, 0.0);
        self.completed.clear();
        self.completed.resize(m, 0);
        self.available.clear();
        self.available.resize(m, true);
    }

    /// Number of slaves the columns cover.
    pub fn len(&self) -> usize {
        self.outstanding.len()
    }

    /// `true` iff the columns cover no slave.
    pub fn is_empty(&self) -> bool {
        self.outstanding.is_empty()
    }

    /// Value snapshot of slave `j`'s row.
    pub fn get(&self, j: usize) -> SlaveView {
        SlaveView {
            outstanding: self.outstanding[j],
            ready_estimate: Time::new(self.ready_estimate[j]),
            completed: self.completed[j],
            available: self.available[j],
        }
    }

    /// Writes slave `j`'s row from a value snapshot.
    pub fn set(&mut self, j: usize, v: SlaveView) {
        self.outstanding[j] = v.outstanding;
        self.ready_estimate[j] = v.ready_estimate.as_f64();
        self.completed[j] = v.completed;
        self.available[j] = v.available;
    }
}

/// Owned observable state from which a [`SimView`] can be borrowed.
///
/// The DES engine builds views internally; alternative backends (the
/// threaded cluster executor of `mss-cluster`, custom harnesses, tests)
/// maintain a `ViewState` and call [`ViewState::view`] to drive any
/// [`OnlineScheduler`](crate::OnlineScheduler) outside the simulator.
/// [`ViewState::new`] starts at [`InfoTier::Clairvoyant`]; set
/// [`ViewState::tier`] (and maintain [`ViewState::estimates`]) to drive
/// schedulers under a withdrawn information model.
#[derive(Clone, Debug)]
pub struct ViewState {
    /// Current time.
    pub now: Time,
    /// The (nominal) platform.
    pub platform: Platform,
    /// Information tier the borrowed views filter at.
    pub tier: InfoTier,
    /// When the master's port frees (≤ `now` when idle).
    pub link_busy_until: Time,
    /// Per-slave observable state, column-major.
    pub slaves: SlaveViews,
    /// Per-slave learned rate estimates, column-major (read below
    /// `Clairvoyant`).
    pub estimates: SlaveEstimates,
    /// Bumped whenever an estimate absorbs a new observation.
    pub estimate_version: u64,
    /// Released, unassigned tasks in FIFO order.
    pub pending: Vec<TaskId>,
    /// Release time per task id (only entries for released tasks are read).
    pub releases: Vec<Time>,
    /// Total-task-count hint, if granted.
    pub horizon: Option<usize>,
    /// Number of tasks released so far.
    pub released_count: usize,
    /// Number of tasks completed so far.
    pub completed_count: usize,
}

impl ViewState {
    /// Fresh state at time zero for a platform (clairvoyant tier).
    pub fn new(platform: Platform, num_tasks: usize, horizon: Option<usize>) -> Self {
        let m = platform.num_slaves();
        ViewState {
            now: Time::ZERO,
            platform,
            tier: InfoTier::Clairvoyant,
            link_busy_until: Time::ZERO,
            slaves: SlaveViews::new(m),
            estimates: SlaveEstimates::new(m),
            estimate_version: 0,
            pending: Vec::new(),
            releases: vec![Time::ZERO; num_tasks],
            horizon,
            released_count: 0,
            completed_count: 0,
        }
    }

    /// Borrows the state as the view schedulers consume.
    pub fn view(&self) -> SimView<'_> {
        SimView {
            now: self.now,
            platform: &self.platform,
            tier: self.tier,
            link_busy_until: self.link_busy_until,
            slaves: &self.slaves,
            estimates: &self.estimates,
            estimate_version: self.estimate_version,
            pending: &self.pending,
            releases: &self.releases,
            release_base: 0,
            horizon: self.horizon,
            released_count: self.released_count,
            completed_count: self.completed_count,
            journal: None,
            idle_lazy: false,
        }
    }
}

/// Immutable snapshot handed to [`OnlineScheduler`](crate::OnlineScheduler)
/// callbacks — the tier-filtering facade.
///
/// Inside the engine this is a pure borrow of incrementally maintained
/// state — constructing and reading a view allocates nothing, at every
/// tier. Outside the engine, borrow one from an owned [`ViewState`]:
///
/// ```
/// use mss_sim::{Platform, SlaveId, TaskId, Time, ViewState};
///
/// let mut state = ViewState::new(Platform::from_vectors(&[1.0, 2.0], &[3.0, 5.0]), 4, None);
/// state.pending.push(TaskId(0));
/// state.released_count = 1;
/// let view = state.view();
/// assert_eq!(view.num_slaves(), 2);
/// assert_eq!(view.pending_tasks(), &[TaskId(0)]);
/// assert!(view.link_idle());
/// // Both slaves are idle: a new task finishes at c_j + p_j.
/// assert_eq!(view.completion_estimate(SlaveId(0)), Time::new(4.0));
/// assert_eq!(view.completion_estimate(SlaveId(1)), Time::new(7.0));
/// ```
pub struct SimView<'a> {
    pub(crate) now: Time,
    pub(crate) platform: &'a Platform,
    pub(crate) tier: InfoTier,
    pub(crate) link_busy_until: Time,
    pub(crate) slaves: &'a SlaveViews,
    pub(crate) estimates: &'a SlaveEstimates,
    pub(crate) estimate_version: u64,
    pub(crate) pending: &'a [TaskId],
    pub(crate) releases: &'a [Time],
    /// First task id `releases` holds a slot for (0 except in
    /// bounded-memory streamed runs, where finalized slots are recycled
    /// and the window starts at the oldest live task).
    pub(crate) release_base: usize,
    pub(crate) horizon: Option<usize>,
    pub(crate) released_count: usize,
    pub(crate) completed_count: usize,
    /// The engine's ring of event-touched slaves, when this view is
    /// engine-backed — the raw material of the sublinear decision kernels
    /// ([`crate::kernel::IncrementalArgmin`]). `None` for views borrowed
    /// from an owned [`ViewState`], where kernels fall back to the exact
    /// chunked scan.
    pub(crate) journal: Option<&'a TouchJournal>,
    /// Engine-backed views answer an idle slave's ready estimate as `now`
    /// directly instead of reading the cached column (the fold over an
    /// empty queue *is* `now`, so this is bit-identical) — which is what
    /// lets the engine skip per-callback recomputation of idle rows.
    /// `ViewState`-backed views keep full column authority.
    pub(crate) idle_lazy: bool,
}

impl<'a> SimView<'a> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The information tier this view filters at.
    pub fn info_tier(&self) -> InfoTier {
        self.tier
    }

    /// The platform (nominal `c_j`, `p_j`).
    ///
    /// **Capability gate:** nominal values are privileged knowledge, so
    /// this accessor exists only at [`InfoTier::Clairvoyant`] and panics
    /// below it. Tier-portable schedulers use [`SimView::believed_c`] /
    /// [`SimView::believed_p`] (and [`SimView::num_slaves`] /
    /// [`SimView::slave_ids`] for the tier-free topology) instead.
    #[track_caller]
    pub fn platform(&self) -> &Platform {
        assert!(
            self.tier == InfoTier::Clairvoyant,
            "SimView::platform() is capability-gated: nominal (c_j, p_j) are hidden at \
             InfoTier::{:?} — use believed_c/believed_p instead",
            self.tier
        );
        self.platform
    }

    /// Number of slaves (tier-free: the master always knows its fleet).
    pub fn num_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// Ids of all slaves in index order (tier-free).
    pub fn slave_ids(&self) -> impl Iterator<Item = SlaveId> + 'a {
        (0..self.slaves.len()).map(SlaveId)
    }

    /// When the master's port is next free (`== now()` if idle).
    ///
    /// # Examples
    /// ```
    /// use mss_sim::{Platform, Time, ViewState};
    /// let mut state = ViewState::new(Platform::from_vectors(&[1.0], &[2.0]), 1, None);
    /// state.now = Time::new(3.0);
    /// state.link_busy_until = Time::new(5.0);
    /// assert_eq!(state.view().link_free_at(), Time::new(5.0));
    /// assert!(!state.view().link_idle());
    /// ```
    pub fn link_free_at(&self) -> Time {
        self.link_busy_until.max(self.now)
    }

    /// `true` iff the port is idle right now.
    pub fn link_idle(&self) -> bool {
        self.link_busy_until <= self.now
    }

    /// Released tasks not yet assigned to any slave, in FIFO release order.
    ///
    /// # Examples
    /// ```
    /// use mss_sim::{Platform, TaskId, ViewState};
    /// let mut state = ViewState::new(Platform::from_vectors(&[1.0], &[2.0]), 2, None);
    /// state.pending.extend([TaskId(1), TaskId(0)]); // FIFO: release order, not id order
    /// assert_eq!(state.view().pending_tasks().first(), Some(&TaskId(1)));
    /// ```
    pub fn pending_tasks(&self) -> &[TaskId] {
        self.pending
    }

    /// Release time of a task that has already been released (an
    /// observation the master made itself, so it is visible at every tier).
    ///
    /// In bounded-memory streamed runs this is defined for *live* tasks —
    /// pending or in flight; a finalized task's slot may have been
    /// recycled (panics on a recycled id, like any out-of-range index).
    pub fn release_time(&self, t: TaskId) -> Time {
        self.releases[t.0 - self.release_base]
    }

    /// Observable state of slave `j`. Below [`InfoTier::Clairvoyant`] the
    /// `ready_estimate` field carries the estimate-based value of
    /// [`SimView::ready_estimate`] instead of the nominal one.
    ///
    /// # Examples
    /// ```
    /// use mss_sim::{Platform, SlaveId, Time, ViewState};
    /// let mut state = ViewState::new(Platform::from_vectors(&[1.0], &[2.0]), 0, None);
    /// state.slaves.outstanding[0] = 3;
    /// state.slaves.ready_estimate[0] = 9.0;
    /// let view = state.view();
    /// assert_eq!(view.slave(SlaveId(0)).outstanding, 3);
    /// assert_eq!(view.slave(SlaveId(0)).ready_estimate, Time::new(9.0));
    /// assert!(!view.slave_idle(SlaveId(0)));
    /// ```
    pub fn slave(&self, j: SlaveId) -> SlaveView {
        match self.tier {
            InfoTier::Clairvoyant => {
                let mut v = self.slaves.get(j.0);
                if self.idle_lazy && v.outstanding == 0 {
                    v.ready_estimate = self.now;
                }
                v
            }
            _ => SlaveView {
                ready_estimate: self.ready_estimate(j),
                ..self.slaves.get(j.0)
            },
        }
    }

    /// The learned rate estimates for slave `j` (derived purely from the
    /// master's own observations, so visible at every tier; at
    /// [`InfoTier::Clairvoyant`] the engine does not maintain them and
    /// they stay at the prior).
    pub fn slave_estimate(&self, j: SlaveId) -> SlaveEstimate {
        self.estimates.get(j.0)
    }

    /// Bumped each time a learned estimate absorbs a new observation
    /// (always `0` at [`InfoTier::Clairvoyant`]). Schedulers that cache
    /// estimate-derived structures (e.g. the Round-Robin ring order)
    /// compare this to decide when to rebuild.
    pub fn estimate_version(&self) -> u64 {
        self.estimate_version
    }

    /// `true` iff slave `j` has no outstanding work at all (SRPT's notion of
    /// a *free* slave).
    pub fn slave_idle(&self, j: SlaveId) -> bool {
        self.slaves.outstanding[j.0] == 0
    }

    /// `true` iff slave `j` is up (not failed). Always `true` on a static
    /// platform.
    pub fn slave_available(&self, j: SlaveId) -> bool {
        self.slaves.available[j.0]
    }

    /// Ids of the currently available (up) slaves, in index order.
    ///
    /// # Examples
    /// ```
    /// use mss_sim::{Platform, SlaveId, ViewState};
    /// let mut state = ViewState::new(Platform::from_vectors(&[1.0, 1.0], &[2.0, 3.0]), 0, None);
    /// state.slaves.available[0] = false; // P1 is down
    /// let view = state.view();
    /// assert!(!view.slave_available(SlaveId(0)));
    /// assert_eq!(view.available_slaves().collect::<Vec<_>>(), vec![SlaveId(1)]);
    /// ```
    pub fn available_slaves(&self) -> impl Iterator<Item = SlaveId> + '_ {
        self.slaves
            .available
            .iter()
            .enumerate()
            .filter(|(_, &up)| up)
            .map(|(j, _)| SlaveId(j))
    }

    /// The master's belief about slave `j`'s per-task communication time:
    /// the nominal `c_j` at [`InfoTier::Clairvoyant`], the learned
    /// [`SlaveEstimate::c_hat`] below it (a memoized dense-column read —
    /// see [`SlaveEstimates::c_hats`]).
    pub fn believed_c(&self, j: SlaveId) -> f64 {
        match self.tier {
            InfoTier::Clairvoyant => self.platform.c(j),
            _ => self.estimates.c_hats()[j.0],
        }
    }

    /// The master's belief about slave `j`'s per-task computation time:
    /// the nominal `p_j` at [`InfoTier::Clairvoyant`], the learned
    /// [`SlaveEstimate::p_hat`] below it (a memoized dense-column read —
    /// see [`SlaveEstimates::p_hats`]).
    pub fn believed_p(&self, j: SlaveId) -> f64 {
        match self.tier {
            InfoTier::Clairvoyant => self.platform.p(j),
            _ => self.estimates.p_hats()[j.0],
        }
    }

    /// Estimated time at which slave `j` finishes all outstanding work
    /// (`now` for an idle slave).
    ///
    /// At [`InfoTier::Clairvoyant`] this is the engine's incrementally
    /// maintained nominal-size estimate, bit-identical to the historical
    /// `SlaveView::ready_estimate`. Below it, the facade folds the learned
    /// rates over the observable queue: the computation believed in
    /// progress ends at `max(now, observed_start + p̂)`, and every other
    /// outstanding task adds one `p̂`.
    pub fn ready_estimate(&self, j: SlaveId) -> Time {
        match self.tier {
            InfoTier::Clairvoyant => {
                if self.idle_lazy && self.slaves.outstanding[j.0] == 0 {
                    // An idle slave's fold is `now` itself; answering it
                    // directly spares the engine the per-callback
                    // recomputation of every idle row (bit-identical).
                    self.now
                } else {
                    Time::new(self.slaves.ready_estimate[j.0])
                }
            }
            _ => {
                let outstanding = self.slaves.outstanding[j.0];
                let now = self.now.as_f64();
                let p = self.estimates.p_hats()[j.0];
                let (base, tail) = if self.estimates.is_computing(j.0) {
                    (
                        (self.estimates.cur_start(j.0) + p).max(now),
                        outstanding.saturating_sub(1),
                    )
                } else {
                    (now, outstanding)
                };
                Time::new(base + tail as f64 * p)
            }
        }
    }

    /// Estimated completion time of a *new nominal task* if the master
    /// started sending it to `j` as soon as the port is free:
    /// `start = max(link_free, ready_j_estimate_after_comm)`, i.e.
    /// `max(link_free + c_j, ready_j) + p_j`.
    ///
    /// This is the quantity the paper's List Scheduling heuristic
    /// minimizes. Below [`InfoTier::Clairvoyant`] the same formula is
    /// evaluated over believed values and the estimate-based ready time.
    pub fn completion_estimate(&self, j: SlaveId) -> Time {
        match self.tier {
            InfoTier::Clairvoyant => {
                let recv = self.link_free_at() + self.platform.c(j);
                let ready = if self.idle_lazy && self.slaves.outstanding[j.0] == 0 {
                    self.now
                } else {
                    Time::new(self.slaves.ready_estimate[j.0])
                };
                let start = recv.max(ready);
                start + self.platform.p(j)
            }
            _ => {
                let recv = self.link_free_at() + self.believed_c(j);
                let start = recv.max(self.ready_estimate(j));
                start + self.believed_p(j)
            }
        }
    }

    /// Total number of tasks the instance will ever contain, when the
    /// scheduler has been granted that knowledge (the paper gives it to SLJF
    /// and SLJFWC); `None` in the pure on-line setting.
    ///
    /// At [`InfoTier::NonClairvoyant`] the hint is withdrawn (it is
    /// knowledge about unseen workload) and this always answers `None`.
    pub fn horizon(&self) -> Option<usize> {
        match self.tier {
            InfoTier::NonClairvoyant => None,
            _ => self.horizon,
        }
    }

    /// The engine's journal of event-touched slaves, when this view is
    /// engine-backed — what lets [`crate::kernel::IncrementalArgmin`]
    /// update only the leaves that can have changed. `None` on views
    /// borrowed from an owned [`ViewState`] (kernels then fall back to
    /// the exact chunked scan).
    pub fn touch_journal(&self) -> Option<&'a TouchJournal> {
        self.journal
    }

    /// How many tasks have been released so far.
    pub fn released_count(&self) -> usize {
        self.released_count
    }

    /// How many tasks have completed so far.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ViewState {
        ViewState::new(Platform::from_vectors(&[1.0, 2.0], &[3.0, 5.0]), 4, Some(4))
    }

    #[test]
    fn clairvoyant_believes_nominal_values() {
        let s = state();
        let v = s.view();
        assert_eq!(v.believed_c(SlaveId(1)), 2.0);
        assert_eq!(v.believed_p(SlaveId(1)), 5.0);
        assert_eq!(v.horizon(), Some(4));
        assert_eq!(v.estimate_version(), 0);
    }

    #[test]
    fn lower_tiers_answer_from_estimates() {
        let mut s = state();
        s.tier = InfoTier::SpeedOblivious;
        s.estimates.observe_send(0, 0.5);
        s.estimates.observe_compute(0, 4.0);
        let v = s.view();
        assert_eq!(v.believed_c(SlaveId(0)), 0.5);
        assert_eq!(v.believed_p(SlaveId(0)), 4.0);
        // No observations on slave 1 yet: the prior.
        assert_eq!(v.believed_c(SlaveId(1)), SlaveEstimate::PRIOR);
        assert_eq!(v.horizon(), Some(4), "horizon survives at speed-oblivious");
    }

    #[test]
    fn non_clairvoyant_hides_the_horizon() {
        let mut s = state();
        s.tier = InfoTier::NonClairvoyant;
        assert_eq!(s.view().horizon(), None);
    }

    #[test]
    #[should_panic(expected = "capability-gated")]
    fn platform_is_gated_below_clairvoyant() {
        let mut s = state();
        s.tier = InfoTier::SpeedOblivious;
        let _ = s.view().platform();
    }

    #[test]
    fn estimate_ready_folds_the_observable_queue() {
        let mut s = state();
        s.tier = InfoTier::SpeedOblivious;
        s.now = Time::new(10.0);
        s.slaves.outstanding[0] = 3;
        s.estimates.observe_compute(0, 2.0);
        s.estimates.begin_compute(0, 9.0);
        let v = s.view();
        // Current task ends at max(10, 9 + 2) = 11, plus two more at 2 each.
        assert_eq!(v.ready_estimate(SlaveId(0)), Time::new(15.0));
        // Idle slave: ready now, completion = link_free + ĉ + p̂ (priors).
        assert_eq!(v.ready_estimate(SlaveId(1)), Time::new(10.0));
        assert_eq!(v.completion_estimate(SlaveId(1)), Time::new(12.0));
    }
}
