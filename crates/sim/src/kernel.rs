//! Sublinear decision kernels: incremental argmin over the SoA slave state.
//!
//! Every paper heuristic reduces to repeated *argmin* decisions over
//! per-slave keys (SRPT's fastest idle slave, List Scheduling's earliest
//! estimated completion, Round Robin's first eligible ring slot). The
//! historical implementation re-scans all `m` slaves on every decision;
//! this module makes those decisions sublinear in `m` while staying
//! **bit-identical** to the linear scan:
//!
//! * [`scan_argmin`] — the historical sequential scan (strict `<` keeps
//!   the lowest index), kept as the executable reference;
//! * [`chunked_argmin`] — the same winner computed in 8 independent lanes
//!   and combined by an exact lexicographic `(key, index)` reduction. No
//!   arithmetic is performed on keys, only comparisons, so the winner is
//!   *exactly* the sequential scan's winner;
//! * [`ArgminTree`] — a tournament tree (segment tree of min, ties broken
//!   by lowest slave index) over materialized keys: O(log m) per updated
//!   leaf, O(1) queries from the root;
//! * [`TouchJournal`] — the engine-side ring of event-touched slaves that
//!   tells a kernel *which* leaves can have changed since it last synced;
//! * [`IncrementalArgmin`] — the scheduler-facing kernel combining all of
//!   the above: it replays the journal suffix into the tree (or rebuilds
//!   on a run/platform change or journal overflow) and answers from the
//!   root. Below [`TREE_THRESHOLD`] slaves, or on views without a journal
//!   (owned [`ViewState`](crate::ViewState)s), it falls back to the
//!   chunked scan.
//!
//! # The bit-identity argument
//!
//! The sequential scan keeps the first strictly smaller key, so its
//! winner is the minimum of the lexicographic pairs `(key_j, j)`. Lane
//! minima and tree nodes each hold the lexicographic minimum of a subset
//! of those pairs, and combining subsets loses nothing — min is
//! associative — so every strategy yields the same pair, hence the same
//! `SlaveId`, with **no** rounding anywhere (comparisons only). This is
//! what lets kernel-backed heuristics claim observational purity
//! (ARCHITECTURE contract #15): traces, digests and artifacts are
//! byte-identical to the scan-based heuristics they replace.
//!
//! # Keys a tree can index
//!
//! The tree caches keys, so a key must be a pure function of state whose
//! changes are journaled — per-slave believed rates, queue lengths,
//! availability (SRPT, RR eligibility). Keys that depend on `now` or the
//! shared port (List Scheduling's completion estimate) change for *all*
//! slaves between decisions and must use the chunked scan instead.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::platform::SlaveId;
use crate::view::SimView;
use mss_obs::kernel_stats::{
    record_kernel_query, record_kernel_rebuild, record_kernel_replayed, record_kernel_scan,
};

/// Below this many slaves the tree bookkeeping costs more than it saves
/// and [`IncrementalArgmin`] answers by [`chunked_argmin`] instead. Tests
/// force the tree at small `m` via [`IncrementalArgmin::with_threshold`].
pub const TREE_THRESHOLD: usize = 64;

/// Monotone source of per-run nonces ([`TouchJournal::run`]): process-wide
/// so a scheduler reused against *any* other workspace (sweep workers
/// hand schedulers and workspaces around independently) can never mistake
/// a new run's journal for a continuation of the one it synced against.
static RUN_NONCE: AtomicU64 = AtomicU64::new(1);

/// The historical argmin: one sequential pass, strict `<`, so the lowest
/// index wins ties; all-infinite keys yield index 0. Keys must not be NaN
/// (debug-asserted). This is the executable reference the kernels are
/// proven against — production paths use [`chunked_argmin`] or the tree.
pub fn scan_argmin<F: FnMut(usize) -> f64>(m: usize, mut key: F) -> usize {
    let mut best = f64::INFINITY;
    let mut arg = 0usize;
    for j in 0..m {
        let k = key(j);
        debug_assert!(!k.is_nan(), "argmin key for slave {j} is NaN");
        if k < best {
            best = k;
            arg = j;
        }
    }
    arg
}

/// Exact chunked argmin: 8 independent lanes each keep the lexicographic
/// `(key, index)` minimum of their stripe, combined by one final exact
/// reduction. Same winner as [`scan_argmin`], bit for bit (comparisons
/// only, no arithmetic on keys); the dense stripes keep the hot loop free
/// of the single serial `best` dependency the sequential scan carries.
pub fn chunked_argmin<F: FnMut(usize) -> f64>(m: usize, mut key: F) -> usize {
    const LANES: usize = 8;
    let mut lane_key = [f64::INFINITY; LANES];
    let mut lane_idx = [usize::MAX; LANES];
    let mut base = 0usize;
    while base + LANES <= m {
        for l in 0..LANES {
            let j = base + l;
            let k = key(j);
            debug_assert!(!k.is_nan(), "argmin key for slave {j} is NaN");
            if k < lane_key[l] {
                lane_key[l] = k;
                lane_idx[l] = j;
            }
        }
        base += LANES;
    }
    for (l, j) in (base..m).enumerate() {
        let k = key(j);
        debug_assert!(!k.is_nan(), "argmin key for slave {j} is NaN");
        if k < lane_key[l] {
            lane_key[l] = k;
            lane_idx[l] = j;
        }
    }
    // Lexicographic (key, index) reduction over the lanes. A lane's index
    // is MAX iff it never saw a finite-beating key; if every lane is MAX
    // the scan's answer is index 0.
    let mut bk = f64::INFINITY;
    let mut bi = usize::MAX;
    for l in 0..LANES {
        if lane_key[l] < bk || (lane_key[l] == bk && lane_idx[l] < bi) {
            bk = lane_key[l];
            bi = lane_idx[l];
        }
    }
    if bi == usize::MAX {
        0
    } else {
        bi
    }
}

/// Ring journal of event-touched slaves, maintained by the engine inside
/// its workspace and exposed to schedulers through
/// [`SimView::touch_journal`](crate::SimView::touch_journal).
///
/// Every engine event that can change a slave's observable state (sends,
/// completions, failures, recoveries, estimate updates) appends the slave
/// index — deduplicated per refresh cycle, so a batch touches each slave
/// at most once. `epoch` counts appends over the whole run; the ring
/// holds the most recent `capacity` entries, so a kernel whose lag
/// exceeds the capacity simply rebuilds (correct either way — the journal
/// is a performance hint, never a source of truth).
#[derive(Debug, Default)]
pub struct TouchJournal {
    run: u64,
    epoch: u64,
    ring: Vec<u32>,
}

impl TouchJournal {
    /// Re-arms the journal for a fresh run over `m` slaves: new run
    /// nonce, epoch zero, ring sized to a power of two that comfortably
    /// covers a full between-decisions event burst (O(m)).
    pub(crate) fn reset(&mut self, m: usize) {
        self.run = RUN_NONCE.fetch_add(1, Ordering::Relaxed);
        self.epoch = 0;
        let cap = (2 * m + 64).next_power_of_two();
        if self.ring.len() != cap {
            self.ring.clear();
            self.ring.resize(cap, 0);
        }
    }

    /// Appends a touched slave index.
    #[inline]
    pub(crate) fn touch(&mut self, j: u32) {
        let mask = self.ring.len() - 1;
        self.ring[(self.epoch as usize) & mask] = j;
        self.epoch += 1;
    }

    /// Nonce of the run this journal describes — unique process-wide, so
    /// comparing it against a previously synced nonce is a sound "same
    /// run?" test even for schedulers migrating between workspaces.
    pub fn run(&self) -> u64 {
        self.run
    }

    /// Total touches appended this run.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of most-recent entries the ring retains.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// The touch appended at absolute epoch `e`. Meaningful only for
    /// `e` within `capacity` of [`TouchJournal::epoch`].
    #[inline]
    pub fn entry(&self, e: u64) -> u32 {
        self.ring[(e as usize) & (self.ring.len() - 1)]
    }
}

/// Tournament tree of lexicographic `(key, slave index)` minima: a
/// power-of-two segment tree whose padding leaves hold `(+∞, u32::MAX)`
/// so they can never win against a real slave. Updates bubble a changed
/// leaf to the root in O(log m); the winner is read from the root in
/// O(1). Comparisons never round, so the root is exactly the
/// [`scan_argmin`] winner over the same keys.
#[derive(Debug, Default, Clone)]
pub struct ArgminTree {
    /// Node keys, 1-based heap layout (`key[1]` is the root, leaves at
    /// `p2..p2 + m`).
    key: Vec<f64>,
    /// Winning slave index per node (`u32::MAX` on padding).
    idx: Vec<u32>,
    m: usize,
    p2: usize,
}

impl ArgminTree {
    /// Number of leaves (slaves) currently indexed.
    pub fn len(&self) -> usize {
        self.m
    }

    /// `true` before the first rebuild.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    #[inline]
    fn better(ka: f64, ia: u32, kb: f64, ib: u32) -> bool {
        // Is (kb, ib) lexicographically smaller than (ka, ia)?
        kb < ka || (kb == ka && ib < ia)
    }

    /// Re-keys every slave from `key` and rebuilds all internal nodes:
    /// O(m). Reuses node storage across runs of the same size.
    pub fn rebuild<F: FnMut(usize) -> f64>(&mut self, m: usize, key: &mut F) {
        let p2 = m.next_power_of_two().max(1);
        if self.p2 != p2 {
            self.key.clear();
            self.key.resize(2 * p2, f64::INFINITY);
            self.idx.clear();
            self.idx.resize(2 * p2, u32::MAX);
            self.p2 = p2;
        }
        self.m = m;
        for j in 0..m {
            let k = key(j);
            debug_assert!(!k.is_nan(), "argmin key for slave {j} is NaN");
            self.key[p2 + j] = k;
            self.idx[p2 + j] = j as u32;
        }
        for j in m..p2 {
            self.key[p2 + j] = f64::INFINITY;
            self.idx[p2 + j] = u32::MAX;
        }
        for i in (1..p2).rev() {
            let (lk, li) = (self.key[2 * i], self.idx[2 * i]);
            let (rk, ri) = (self.key[2 * i + 1], self.idx[2 * i + 1]);
            if Self::better(lk, li, rk, ri) {
                self.key[i] = rk;
                self.idx[i] = ri;
            } else {
                self.key[i] = lk;
                self.idx[i] = li;
            }
        }
    }

    /// Updates slave `j`'s key and bubbles the change to the root,
    /// stopping as soon as a node is unaffected: O(log m) worst case.
    pub fn update(&mut self, j: usize, k: f64) {
        debug_assert!(!k.is_nan(), "argmin key for slave {j} is NaN");
        debug_assert!(j < self.m, "update of slave {j} past tree size {}", self.m);
        let mut i = self.p2 + j;
        if self.key[i].to_bits() == k.to_bits() {
            return;
        }
        self.key[i] = k;
        while i > 1 {
            i /= 2;
            let (lk, li) = (self.key[2 * i], self.idx[2 * i]);
            let (rk, ri) = (self.key[2 * i + 1], self.idx[2 * i + 1]);
            let (nk, ni) = if Self::better(lk, li, rk, ri) {
                (rk, ri)
            } else {
                (lk, li)
            };
            if self.key[i].to_bits() == nk.to_bits() && self.idx[i] == ni {
                break;
            }
            self.key[i] = nk;
            self.idx[i] = ni;
        }
    }

    /// The winning slave index — the [`scan_argmin`] answer over the
    /// current keys (index 0 when every key is `+∞`, like the scan).
    pub fn winner(&self) -> usize {
        debug_assert!(self.m > 0, "winner() on an empty tree");
        let i = self.idx[1];
        if i == u32::MAX {
            0
        } else {
            i as usize
        }
    }
}

/// The scheduler-facing decision kernel: an argmin over per-slave keys
/// that is sublinear in `m` when the view carries a [`TouchJournal`] and
/// bit-identical to [`scan_argmin`] always.
///
/// One kernel indexes **one key family**: the keys it caches are only
/// re-derived for journaled slaves, so calling [`IncrementalArgmin::argmin`]
/// with closures that disagree about un-touched slaves is a logic error.
/// If an external input to the key family changes wholesale (e.g. Round
/// Robin re-sorting its ring), call [`IncrementalArgmin::invalidate`].
#[derive(Debug, Clone)]
pub struct IncrementalArgmin {
    tree: ArgminTree,
    synced_run: u64,
    synced_epoch: u64,
    live: bool,
    scan_only: bool,
    threshold: usize,
}

impl Default for IncrementalArgmin {
    fn default() -> Self {
        IncrementalArgmin::new()
    }
}

impl IncrementalArgmin {
    /// A tree-backed kernel with the default small-`m` scan threshold.
    pub fn new() -> Self {
        IncrementalArgmin {
            tree: ArgminTree::default(),
            synced_run: 0,
            synced_epoch: 0,
            live: false,
            scan_only: false,
            threshold: TREE_THRESHOLD,
        }
    }

    /// The linear-scan reference kernel: every decision is answered by
    /// [`chunked_argmin`], never the tree. Used by equivalence proptests
    /// and the `kernel-vs-scan` benchmarks as the historical path.
    pub fn scan_reference() -> Self {
        IncrementalArgmin {
            scan_only: true,
            ..IncrementalArgmin::new()
        }
    }

    /// Overrides [`TREE_THRESHOLD`] (tests force the tree at tiny `m`
    /// with a threshold of 0).
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold;
        self
    }

    /// Forgets all cached keys; the next decision rebuilds. Call after
    /// wholesale changes to the key family's external inputs.
    pub fn invalidate(&mut self) {
        self.live = false;
    }

    /// The slave minimizing `key`, resolving ties toward the lowest
    /// index — exactly the [`scan_argmin`] winner. Sublinear when the
    /// tree is engaged; an exact chunked scan otherwise.
    pub fn argmin<F: FnMut(usize) -> f64>(&mut self, view: &SimView<'_>, mut key: F) -> SlaveId {
        let m = view.num_slaves();
        let journal = match view.touch_journal() {
            Some(j) if !self.scan_only && m >= self.threshold => j,
            _ => {
                record_kernel_scan();
                return SlaveId(chunked_argmin(m, key));
            }
        };
        if !self.live
            || journal.run() != self.synced_run
            || m != self.tree.len()
            || journal.epoch() - self.synced_epoch > journal.capacity() as u64
        {
            self.tree.rebuild(m, &mut key);
            record_kernel_rebuild();
        } else if journal.epoch() > self.synced_epoch {
            for e in self.synced_epoch..journal.epoch() {
                let j = journal.entry(e) as usize;
                self.tree.update(j, key(j));
            }
            record_kernel_replayed(journal.epoch() - self.synced_epoch);
        }
        self.live = true;
        self.synced_run = journal.run();
        self.synced_epoch = journal.epoch();
        record_kernel_query();
        SlaveId(self.tree.winner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_matches_scan_on_awkward_shapes() {
        // Duplicate minima, infinities, lane boundaries, tiny m.
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![3.0],
            vec![f64::INFINITY],
            vec![f64::INFINITY; 17],
            vec![2.0, 1.0, 1.0, 5.0],
            (0..64).map(|i| ((i * 7) % 13) as f64).collect(),
            (0..65).map(|i| ((i * 11) % 5) as f64).collect(),
            (0..100)
                .map(|i| if i % 9 == 0 { f64::INFINITY } else { 4.0 })
                .collect(),
        ];
        for keys in cases {
            let m = keys.len();
            if m == 0 {
                continue;
            }
            assert_eq!(
                chunked_argmin(m, |j| keys[j]),
                scan_argmin(m, |j| keys[j]),
                "keys {keys:?}"
            );
        }
    }

    #[test]
    fn tree_tracks_scan_through_updates() {
        let mut keys: Vec<f64> = (0..37).map(|i| ((i * 29) % 17) as f64).collect();
        let mut tree = ArgminTree::default();
        tree.rebuild(keys.len(), &mut |j| keys[j]);
        assert_eq!(tree.winner(), scan_argmin(keys.len(), |j| keys[j]));
        // A deterministic walk of updates, including ties and infinities.
        for step in 0..200usize {
            let j = (step * 13) % keys.len();
            let k = match step % 4 {
                0 => f64::INFINITY,
                1 => 0.0,
                2 => ((step * 31) % 23) as f64,
                _ => keys[(step * 7) % keys.len()],
            };
            keys[j] = k;
            tree.update(j, k);
            assert_eq!(
                tree.winner(),
                scan_argmin(keys.len(), |j| keys[j]),
                "step {step}: keys {keys:?}"
            );
        }
    }

    #[test]
    fn all_infinite_keys_pick_slave_zero_everywhere() {
        let m = 9;
        let mut tree = ArgminTree::default();
        tree.rebuild(m, &mut |_| f64::INFINITY);
        assert_eq!(tree.winner(), 0);
        assert_eq!(chunked_argmin(m, |_| f64::INFINITY), 0);
        assert_eq!(scan_argmin(m, |_| f64::INFINITY), 0);
    }

    #[test]
    fn journal_ring_wraps_and_renumbers_runs() {
        let mut j = TouchJournal::default();
        j.reset(2);
        let first_run = j.run();
        let cap = j.capacity();
        assert!(cap >= 4 && cap.is_power_of_two());
        for i in 0..(cap as u64 + 3) {
            j.touch((i % 5) as u32);
        }
        assert_eq!(j.epoch(), cap as u64 + 3);
        // The most recent `cap` entries are retrievable.
        for e in j.epoch() - cap as u64..j.epoch() {
            assert_eq!(j.entry(e), (e % 5) as u32);
        }
        j.reset(2);
        assert_ne!(j.run(), first_run);
        assert_eq!(j.epoch(), 0);
    }
}
