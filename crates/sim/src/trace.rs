//! Execution traces and their validation.
//!
//! A [`Trace`] is the complete, replayable record of one simulated (or real,
//! see `mss-cluster`) execution: for every task, when it was released, when
//! its send started/ended, which slave ran it and when. All objective
//! functions and all adversary checkpoints are computed from traces.
//!
//! [`validate`] re-checks the model invariants on a finished trace — the
//! one-port property, per-slave mutual exclusion, causality, and duration
//! consistency — and is used both in tests and as a self-check by the lab
//! harness.

use crate::platform::{Platform, SlaveId};
use crate::task::TaskId;
use crate::time::{Time, TIME_EPS};

/// The full life cycle of one task.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TaskRecord {
    /// Task id.
    pub task: TaskId,
    /// Release time `r_i`.
    pub release: Time,
    /// Slave the task was assigned to.
    pub slave: SlaveId,
    /// When the master started sending the task.
    pub send_start: Time,
    /// When the send completed (task available at the slave).
    pub send_end: Time,
    /// When the slave started executing the task.
    pub compute_start: Time,
    /// Completion time `C_i`.
    pub compute_end: Time,
    /// Actual communication-size multiplier billed.
    pub size_c: f64,
    /// Actual computation-size multiplier billed.
    pub size_p: f64,
}

impl TaskRecord {
    /// Response time (flow time) `C_i − r_i`.
    pub fn flow(&self) -> f64 {
        self.compute_end - self.release
    }
}

/// A complete execution trace (one record per task, indexed by task id).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    records: Vec<TaskRecord>,
}

impl Trace {
    /// Builds a trace from records sorted by task id `0..n`.
    ///
    /// # Panics
    /// Panics if the records are not exactly `T0..T{n-1}` in order.
    pub fn new(records: Vec<TaskRecord>) -> Self {
        for (i, r) in records.iter().enumerate() {
            assert_eq!(
                r.task.0, i,
                "Trace::new: records must be indexed by task id"
            );
        }
        Trace { records }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff the trace contains no task.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record of task `t`.
    pub fn record(&self, t: TaskId) -> &TaskRecord {
        &self.records[t.0]
    }

    /// All records in task-id order.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Makespan `max C_i` (0 for an empty trace).
    pub fn makespan(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.compute_end.as_f64())
            .fold(0.0, f64::max)
    }

    /// Maximum response time `max (C_i − r_i)`.
    pub fn max_flow(&self) -> f64 {
        self.records
            .iter()
            .map(TaskRecord::flow)
            .fold(0.0, f64::max)
    }

    /// Sum of response times `Σ (C_i − r_i)`.
    pub fn sum_flow(&self) -> f64 {
        self.records.iter().map(TaskRecord::flow).sum()
    }

    /// Per-slave task counts.
    pub fn counts_per_slave(&self, num_slaves: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_slaves];
        for r in &self.records {
            counts[r.slave.0] += 1;
        }
        counts
    }
}

/// A violated trace invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceViolation {
    /// `send_start < release`.
    SendBeforeRelease(TaskId),
    /// `compute_start < send_end`.
    ComputeBeforeReceive(TaskId),
    /// Send duration differs from `c_j · size_c`.
    WrongSendDuration(TaskId),
    /// Compute duration differs from `p_j · size_p`.
    WrongComputeDuration(TaskId),
    /// Two sends overlap on the master's port.
    OnePortViolated(TaskId, TaskId),
    /// Two computations overlap on the same slave.
    SlaveOverlap(TaskId, TaskId, SlaveId),
    /// A record references a slave outside the platform.
    UnknownSlave(TaskId),
}

impl std::fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceViolation::SendBeforeRelease(t) => write!(f, "{t} sent before its release"),
            TraceViolation::ComputeBeforeReceive(t) => {
                write!(f, "{t} computed before fully received")
            }
            TraceViolation::WrongSendDuration(t) => write!(f, "{t} has wrong send duration"),
            TraceViolation::WrongComputeDuration(t) => write!(f, "{t} has wrong compute duration"),
            TraceViolation::OnePortViolated(a, b) => {
                write!(f, "sends of {a} and {b} overlap on the master port")
            }
            TraceViolation::SlaveOverlap(a, b, j) => {
                write!(f, "computations of {a} and {b} overlap on {j}")
            }
            TraceViolation::UnknownSlave(t) => write!(f, "{t} assigned to unknown slave"),
        }
    }
}

/// Checks all model invariants of a finished trace against the platform,
/// with `TIME_EPS`-scaled tolerance. Returns every violation found.
pub fn validate(trace: &Trace, platform: &Platform) -> Vec<TraceViolation> {
    let mut violations = Vec::new();
    let tol = |scale: f64| TIME_EPS * (1.0 + scale.abs());

    for r in trace.records() {
        if r.slave.0 >= platform.num_slaves() {
            violations.push(TraceViolation::UnknownSlave(r.task));
            continue;
        }
        if r.send_start.as_f64() < r.release.as_f64() - tol(r.release.as_f64()) {
            violations.push(TraceViolation::SendBeforeRelease(r.task));
        }
        if r.compute_start.as_f64() < r.send_end.as_f64() - tol(r.send_end.as_f64()) {
            violations.push(TraceViolation::ComputeBeforeReceive(r.task));
        }
        let expect_send = platform.c(r.slave) * r.size_c;
        if ((r.send_end - r.send_start) - expect_send).abs() > tol(expect_send) {
            violations.push(TraceViolation::WrongSendDuration(r.task));
        }
        let expect_comp = platform.p(r.slave) * r.size_p;
        if ((r.compute_end - r.compute_start) - expect_comp).abs() > tol(expect_comp) {
            violations.push(TraceViolation::WrongComputeDuration(r.task));
        }
    }

    // One-port: sort send intervals and check consecutive overlap.
    let mut sends: Vec<&TaskRecord> = trace.records().iter().collect();
    sends.sort_by_key(|r| r.send_start);
    for w in sends.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b.send_start.as_f64() < a.send_end.as_f64() - tol(a.send_end.as_f64()) {
            violations.push(TraceViolation::OnePortViolated(a.task, b.task));
        }
    }

    // Per-slave mutual exclusion.
    for j in platform.slave_ids() {
        let mut on_j: Vec<&TaskRecord> = trace.records().iter().filter(|r| r.slave == j).collect();
        on_j.sort_by_key(|r| r.compute_start);
        for w in on_j.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.compute_start.as_f64() < a.compute_end.as_f64() - tol(a.compute_end.as_f64()) {
                violations.push(TraceViolation::SlaveOverlap(a.task, b.task, j));
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        task: usize,
        slave: usize,
        release: f64,
        send_start: f64,
        send_end: f64,
        compute_start: f64,
        compute_end: f64,
    ) -> TaskRecord {
        TaskRecord {
            task: TaskId(task),
            slave: SlaveId(slave),
            release: Time::new(release),
            send_start: Time::new(send_start),
            send_end: Time::new(send_end),
            compute_start: Time::new(compute_start),
            compute_end: Time::new(compute_end),
            size_c: 1.0,
            size_p: 1.0,
        }
    }

    fn platform() -> Platform {
        Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0])
    }

    #[test]
    fn objectives_from_records() {
        let t = Trace::new(vec![
            rec(0, 0, 0.0, 0.0, 1.0, 1.0, 4.0),
            rec(1, 1, 0.5, 1.0, 2.0, 2.0, 9.0),
        ]);
        assert!((t.makespan() - 9.0).abs() < 1e-12);
        assert!((t.max_flow() - 8.5).abs() < 1e-12);
        assert!((t.sum_flow() - 12.5).abs() < 1e-12);
        assert_eq!(t.counts_per_slave(2), vec![1, 1]);
    }

    #[test]
    fn valid_trace_passes() {
        let t = Trace::new(vec![
            rec(0, 0, 0.0, 0.0, 1.0, 1.0, 4.0),
            rec(1, 1, 0.5, 1.0, 2.0, 2.0, 9.0),
        ]);
        assert!(validate(&t, &platform()).is_empty());
    }

    #[test]
    fn detects_one_port_violation() {
        let t = Trace::new(vec![
            rec(0, 0, 0.0, 0.0, 1.0, 1.0, 4.0),
            rec(1, 1, 0.0, 0.5, 1.5, 1.5, 8.5),
        ]);
        let v = validate(&t, &platform());
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OnePortViolated(_, _))));
    }

    #[test]
    fn detects_send_before_release() {
        let t = Trace::new(vec![rec(0, 0, 2.0, 0.0, 1.0, 1.0, 4.0)]);
        let v = validate(&t, &platform());
        assert_eq!(v, vec![TraceViolation::SendBeforeRelease(TaskId(0))]);
    }

    #[test]
    fn detects_wrong_durations() {
        let t = Trace::new(vec![rec(0, 0, 0.0, 0.0, 2.0, 2.0, 4.0)]);
        let v = validate(&t, &platform());
        assert!(v.contains(&TraceViolation::WrongSendDuration(TaskId(0))));
        assert!(v.contains(&TraceViolation::WrongComputeDuration(TaskId(0))));
    }

    #[test]
    fn detects_slave_overlap() {
        let t = Trace::new(vec![
            rec(0, 0, 0.0, 0.0, 1.0, 1.0, 4.0),
            rec(1, 0, 0.0, 1.0, 2.0, 2.0, 5.0),
        ]);
        let v = validate(&t, &platform());
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::SlaveOverlap(_, _, _))));
    }

    #[test]
    fn detects_compute_before_receive() {
        let t = Trace::new(vec![rec(0, 0, 0.0, 0.0, 1.0, 0.5, 3.5)]);
        let v = validate(&t, &platform());
        assert_eq!(v, vec![TraceViolation::ComputeBeforeReceive(TaskId(0))]);
    }

    #[test]
    #[should_panic(expected = "indexed by task id")]
    fn trace_requires_dense_ids() {
        let _ = Trace::new(vec![rec(1, 0, 0.0, 0.0, 1.0, 1.0, 4.0)]);
    }
}
