//! The discrete-event engine.
//!
//! [`simulate`] runs one on-line scheduler over one task instance on one
//! platform and returns the full [`Trace`]. The engine owns the two scarce
//! resources of the model and enforces them *by construction*:
//!
//! * the master's **one port** — a single link state; a send can only
//!   start when the port is idle, and occupies it for `c_j · size_c` seconds;
//! * each slave's **serial execution** — a slave computes the tasks it has
//!   received one at a time, FIFO, each for `p_j · size_p` seconds.
//!
//! Determinism: events are processed in `(time, insertion sequence)` order
//! and all simultaneous events are applied and delivered to the scheduler
//! before any decision is taken, so a deterministic scheduler always sees
//! the same history — the adversary games rely on this to replay prefixes.
//!
//! [`simulate_with_events`] additionally consumes a platform-event
//! [`Timeline`] (slave failures, recoveries, link/speed drift — see
//! [`crate::events`]): timeline events enter the same heap after the task
//! releases, so the determinism contract extends unchanged to dynamic
//! platforms, and an empty timeline is bit-for-bit the static engine.
//!
//! # The zero-allocation hot path
//!
//! The event loop performs **no heap allocation in steady state**: every
//! buffer it touches lives in a [`SimWorkspace`] that is sized once and
//! reused, both across the events of one run and — through [`simulate_in`]
//! and [`simulate_with_events_in`] — across runs (the sweep executor keeps
//! one workspace per worker thread). Three mechanisms make this possible:
//!
//! * **incrementally maintained slave views** — the [`SlaveView`] handed to
//!   the scheduler is cached per slave and recomputed only when stale — an
//!   event touched that slave (tracked in an explicit dirty stack, with the
//!   `NEG_INFINITY` `view_valid_until` sentinel deduplicating pushes) or
//!   the clock passed the instant up to which the cached nominal estimate
//!   is provably exact (a lazy-deletion min-heap over `view_valid_until`
//!   anchors). Idle slaves — whose fold is `now` itself — are answered
//!   lazily by the view and never recomputed at all, so a refresh touches
//!   only the slaves that actually changed: O(dirty · log m) per callback,
//!   not O(m). The recomputation replays the *same sequential float
//!   arithmetic* as a from-scratch evaluation, so cached and fresh views
//!   are bit-identical — a `debug_assertions` oracle re-derives every view
//!   from scratch after each refresh and asserts bitwise equality;
//! * **an indexed task-phase map** — pending-membership checks in
//!   [`Decision::Send`] validation are O(1) array lookups instead of a scan
//!   of the pending queue, and the pending queue itself is a ring buffer
//!   (front pops — the common case for every paper heuristic — are O(1) and
//!   move no memory);
//! * **pre-sized, reused event heap and notification buffers** — pushes in
//!   steady state never grow capacity.
//!
//! The determinism contract above is unaffected: this module's refactor is
//! observationally transparent (fig1a–d/fig2/table1 artifacts are
//! byte-identical to the pre-refactor engine, enforced by the lab's
//! regression suite).

use crate::events::{PlatformEventKind, Timeline};
use crate::info::{InfoTier, SlaveEstimates};
use crate::kernel::TouchJournal;
use crate::platform::{Platform, SlaveId};
use crate::scheduler::{Decision, OnlineScheduler, SchedulerEvent};
use crate::source::TaskSource;
use crate::task::{TaskArrival, TaskId};
use crate::time::Time;
use crate::trace::{TaskRecord, Trace};
use crate::view::{SimView, SlaveViews};
use mss_obs::{NoopProbe, Probe};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// If `Some(n)`, schedulers are told the instance will contain `n` tasks
    /// in total (the knowledge the paper grants SLJF/SLJFWC). `None` for the
    /// pure on-line setting.
    pub horizon_hint: Option<usize>,
    /// Hard cap on processed events + scheduler polls, to turn scheduler
    /// bugs (e.g. busy wake loops) into errors instead of hangs.
    pub max_steps: usize,
    /// Information tier the scheduler's views filter at (see
    /// [`InfoTier`]). `Clairvoyant` — the default — is the paper's fully
    /// informed setting and is bit-identical to the historical engine;
    /// below it the engine additionally maintains the per-slave learned
    /// rate estimates the filtered views answer from.
    pub info: InfoTier,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon_hint: None,
            max_steps: 10_000_000,
            info: InfoTier::Clairvoyant,
        }
    }
}

impl SimConfig {
    /// Config that reveals the total task count to the scheduler.
    pub fn with_horizon(n: usize) -> Self {
        SimConfig {
            horizon_hint: Some(n),
            ..SimConfig::default()
        }
    }
}

/// Why a simulation could not complete.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// No events remain, the port is idle, tasks are unfinished, and the
    /// scheduler keeps answering [`Decision::Idle`].
    Stalled {
        /// Time at which the simulation stalled.
        at: Time,
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks in the instance.
        total: usize,
    },
    /// The scheduler returned a decision that violates the model.
    InvalidDecision {
        /// Time of the offending decision.
        at: Time,
        /// Human-readable explanation.
        reason: String,
    },
    /// `max_steps` exhausted (runaway wake loop or gigantic instance).
    BudgetExhausted {
        /// The configured step budget.
        max_steps: usize,
    },
    /// The run's [`InfoTier`] grants less information than the scheduler
    /// declared it needs to stay live ([`OnlineScheduler::min_tier`]);
    /// refused before the first event.
    InsufficientInformation {
        /// The tier the run was configured with.
        granted: InfoTier,
        /// The scheduler's declared minimum tier.
        required: InfoTier,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                at,
                completed,
                total,
            } => write!(
                f,
                "simulation stalled at {at}: {completed}/{total} tasks completed and the scheduler idles"
            ),
            SimError::InvalidDecision { at, reason } => {
                write!(f, "invalid scheduler decision at {at}: {reason}")
            }
            SimError::BudgetExhausted { max_steps } => {
                write!(f, "step budget of {max_steps} exhausted")
            }
            SimError::InsufficientInformation { granted, required } => write!(
                f,
                "information tier `{granted}` is below the scheduler's declared minimum `{required}`"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Internal event kinds. `Platform(i)` indexes into the run's [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    Release(TaskId),
    SendComplete(TaskId, SlaveId),
    ComputeComplete(TaskId, SlaveId),
    Platform(usize),
    Wake,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct HeapItem {
    time: Time,
    seq: u64,
    event: Event,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One task outstanding at (or in flight towards) a slave.
#[derive(Clone, Copy, Debug)]
struct OutTask {
    id: TaskId,
    /// Predicted (or, once observed, actual) time the slave has the task.
    avail: f64,
}

#[derive(Clone, Debug, Default)]
struct SlaveRt {
    /// Sent-and-not-completed tasks, in send order. Index 0 is the one
    /// currently computing when `computing` is `Some`.
    outstanding: VecDeque<OutTask>,
    /// Received tasks waiting to compute (subset of `outstanding`).
    queue: VecDeque<TaskId>,
    /// Task currently computing, if any.
    computing: Option<TaskId>,
    /// Heap sequence of the pending `ComputeComplete` (for cancellation on
    /// failure); meaningful only while `computing` is `Some`.
    compute_seq: u64,
    /// Predicted end of the current computation (nominal size).
    cur_pred_end: f64,
    /// `true` while the slave is failed (scenario timelines only).
    down: bool,
    completed: usize,
}

impl SlaveRt {
    /// Clears per-run state while keeping buffer capacity.
    fn reset(&mut self) {
        self.outstanding.clear();
        self.queue.clear();
        self.computing = None;
        self.compute_seq = 0;
        self.cur_pred_end = 0.0;
        self.down = false;
        self.completed = 0;
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct PartialRecord {
    release: f64,
    send_start: f64,
    send_end: f64,
    compute_start: f64,
    compute_end: f64,
    /// Billed multipliers of the successful attempt: the task's actual size
    /// times the drift factor in force when the phase started.
    billed_c: f64,
    billed_p: f64,
    slave: usize,
    assigned: bool,
    done: bool,
}

/// Lifecycle phase of a task, indexed by `TaskId` — the slot map behind O(1)
/// pending-membership checks (no scan of the pending queue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskPhase {
    /// Release event not yet processed.
    Unreleased,
    /// Released and waiting at the master (member of the pending queue).
    Pending,
    /// Sent (or in flight) to a slave.
    Assigned,
    /// Computation completed.
    Done,
}

/// Reusable simulation buffers — the allocation arena of the engine.
///
/// A workspace owns every growable structure the event loop touches: the
/// event heap, per-slave runtime queues, the pending ring buffer, the task
/// phase/record arrays, and the incrementally maintained [`SlaveViews`]
/// column cache. [`simulate_in`] sizes them once per run and the loop then runs
/// allocation-free in steady state; reusing one workspace across runs (as
/// the `mss-sweep` executor does per worker thread) also skips the sizing.
///
/// Results are bit-identical whether a workspace is fresh or reused — every
/// field is re-initialized per run.
///
/// # Examples
/// ```
/// use mss_sim::{simulate_in, SimConfig, SimWorkspace, Platform, bag_of_tasks};
/// use mss_sim::{Decision, OnlineScheduler, SchedulerEvent, SimView, SlaveId};
///
/// struct FirstSlave;
/// impl OnlineScheduler for FirstSlave {
///     fn name(&self) -> String { "first".into() }
///     fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
///         match (view.link_idle(), view.pending_tasks().first()) {
///             (true, Some(&task)) => Decision::Send { task, slave: SlaveId(0) },
///             _ => Decision::Idle,
///         }
///     }
/// }
///
/// let platform = Platform::from_vectors(&[1.0], &[2.0]);
/// let mut ws = SimWorkspace::new();
/// // Buffers warmed by the first run are reused by the second.
/// let a = simulate_in(&mut ws, &platform, &bag_of_tasks(5), &SimConfig::default(),
///                     &mut FirstSlave).unwrap();
/// let b = simulate_in(&mut ws, &platform, &bag_of_tasks(5), &SimConfig::default(),
///                     &mut FirstSlave).unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Default)]
pub struct SimWorkspace {
    heap: BinaryHeap<Reverse<HeapItem>>,
    slaves: Vec<SlaveRt>,
    /// Current drift factors; effective `c_j`/`p_j` is nominal × factor.
    link_factor: Vec<f64>,
    speed_factor: Vec<f64>,
    /// Heap sequences of events voided by a failure (aborted transfers,
    /// computations of lost tasks); popped items with these seqs are skipped.
    cancelled: HashSet<u64>,
    /// Released, unassigned tasks in FIFO order. A ring buffer so that the
    /// dominant removal pattern (the oldest task) is O(1); kept contiguous
    /// so `SimView::pending_tasks` can hand out a plain slice.
    pending: VecDeque<TaskId>,
    /// Task lifecycle phases, indexed by `TaskId` (the slot map).
    phases: Vec<TaskPhase>,
    releases: Vec<Time>,
    records: Vec<PartialRecord>,
    /// Cached per-slave observable state, maintained incrementally —
    /// column-major ([`SlaveViews`]), so scheduler-side argmin scans read
    /// dense same-typed columns.
    views: SlaveViews,
    /// Instant up to which `views.ready_estimate[j]` is exact without
    /// recomputation (see [`Engine::recompute_view`]); `NEG_INFINITY` is
    /// the "dirty" sentinel (an event touched the slave since its view was
    /// cached, and the slave's index sits in `view_dirty`), `INFINITY`
    /// marks an idle slave (its view is answered lazily and never
    /// expires).
    view_valid_until: Vec<f64>,
    /// Indices of slaves whose `view_valid_until` is the dirty sentinel,
    /// drained by `refresh_views` — so a refresh walks the touched
    /// slaves, not all `m`. The sentinel doubles as the de-duplication
    /// guard: a slave is pushed only on its `valid → dirty` transition.
    view_dirty: Vec<u32>,
    /// Lazy-deletion min-heap of `(view_valid_until bits, slave)` for
    /// busy slaves, so the refresh finds clock-expired views (possible
    /// only under perturbed sizes or drift, where a computation outlives
    /// its nominal prediction) without scanning. Entries are validated
    /// against `view_valid_until` on pop; stale ones are discarded.
    /// `f64::to_bits` is order-preserving on the non-negative times
    /// stored here.
    view_expiry: BinaryHeap<Reverse<(u64, u32)>>,
    /// Ring journal of event-touched slaves for the scheduler-side
    /// decision kernels (see [`crate::kernel`]), exposed through
    /// [`SimView::touch_journal`].
    journal: TouchJournal,
    /// Per-slave learned rate estimates (the observable raw material of
    /// the sub-clairvoyant information tiers). Maintained only when the
    /// run's tier is below `Clairvoyant`; at `Clairvoyant` the hot path
    /// never touches them, so the historical engine is unchanged bit for
    /// bit. Column-major ([`SlaveEstimates`]) with memoized believed
    /// rates, so sub-clairvoyant argmin scans are dense `f64` reads.
    estimates: SlaveEstimates,
    /// Per-batch notification buffer (reused across batches).
    notifications: Vec<SchedulerEvent>,
    /// Scratch for tasks lost to a slave failure.
    lost: Vec<TaskId>,
    /// Task indices in release order — stably sorted by `(release, index)`,
    /// which equals the historical `(time, seq)` heap order of release
    /// events. Releases are *streamed* from this array instead of living in
    /// the heap, so the heap only ever holds the O(m) runtime events
    /// (sends, computes, wakes) and its operations stay near-constant.
    release_order: Vec<u32>,
    /// Timeline event indices, stably sorted by `(time, index)` (the
    /// historical order of their heap entries, which carried sequence
    /// numbers `n..n+k`).
    timeline_order: Vec<u32>,
    /// Streamed-mode arrival window, parallel to `phases`/`releases`/
    /// `records` (which hold slots `window_start..window_start + len` in
    /// streamed runs). Unused — and empty — in materialized runs.
    arrivals: Vec<TaskArrival>,
    /// First task id resident in the slot window. Always `0` in
    /// materialized runs and in streamed runs that retain every record
    /// (trace builds); advanced by slot recycling in bounded-memory
    /// streamed runs.
    window_start: usize,
}

impl SimWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Slot index of task `t` in the windowed task arrays. The identity in
    /// materialized runs (`window_start` is 0 there).
    #[inline]
    fn slot(&self, t: TaskId) -> usize {
        t.0 - self.window_start
    }

    /// Re-initializes every buffer for a run of `tasks` over `platform`,
    /// keeping capacity from previous runs.
    fn reset(&mut self, platform: &Platform, tasks: &[TaskArrival], timeline: &Timeline) {
        let n = tasks.len();
        self.release_order.clear();
        self.release_order.extend(0..n as u32);
        // Stable order by (release, index): indices are distinct, so an
        // unstable sort on the pair is stable in effect. Arrival processes
        // produce non-decreasing releases, so the sortedness pre-check makes
        // the common case a plain sequential scan.
        if !tasks.windows(2).all(|w| w[0].release <= w[1].release) {
            self.release_order
                .sort_unstable_by_key(|&i| (tasks[i as usize].release, i));
        }
        self.phases.clear();
        self.phases.resize(n, TaskPhase::Unreleased);
        self.releases.clear();
        self.releases.resize(n, Time::ZERO);
        self.records.clear();
        self.records.resize(n, PartialRecord::default());
        self.pending.clear();
        self.pending.reserve(n);
        self.arrivals.clear();
        self.reset_common(platform, timeline);
    }

    /// [`SimWorkspace::reset`] for a streamed run: the task arrays start
    /// empty and grow (and, in bounded-memory mode, recycle) as the feed
    /// pulls arrivals.
    fn reset_streamed(&mut self, platform: &Platform, timeline: &Timeline) {
        self.release_order.clear();
        self.phases.clear();
        self.releases.clear();
        self.records.clear();
        self.arrivals.clear();
        self.reset_common(platform, timeline);
    }

    /// The feed-independent part of a reset.
    fn reset_common(&mut self, platform: &Platform, timeline: &Timeline) {
        let m = platform.num_slaves();
        self.heap.clear();
        // Releases and timeline events are streamed from their sorted
        // sources; the live heap only holds runtime events: at most one
        // compute per slave, one send in flight, and a few wakes.
        self.heap.reserve(m + 8);
        self.timeline_order.clear();
        self.timeline_order
            .extend(0..timeline.events().len() as u32);
        let tl = timeline.events();
        if !tl.windows(2).all(|w| w[0].time <= w[1].time) {
            self.timeline_order
                .sort_unstable_by_key(|&i| (tl[i as usize].time, i));
        }
        self.window_start = 0;
        for s in &mut self.slaves {
            s.reset();
        }
        if self.slaves.len() > m {
            self.slaves.truncate(m);
        } else {
            self.slaves.resize_with(m, SlaveRt::default);
        }
        self.link_factor.clear();
        self.link_factor.resize(m, 1.0);
        self.speed_factor.clear();
        self.speed_factor.resize(m, 1.0);
        self.cancelled.clear();
        self.pending.clear();
        self.views.reset(m);
        self.view_valid_until.clear();
        self.view_valid_until.resize(m, f64::NEG_INFINITY);
        self.view_dirty.clear();
        self.view_dirty.extend(0..m as u32);
        self.view_expiry.clear();
        self.view_expiry.reserve(m + 8);
        self.journal.reset(m);
        self.estimates.reset(m);
        self.notifications.clear();
        self.lost.clear();
    }
}

/// How the engine obtains task arrivals: from a materialized slice (the
/// historical path) or by pulling a [`TaskSource`] (the streamed path).
///
/// The engine is generic over this seam and monomorphizes per feed, so the
/// slice feed compiles to exactly the pre-streaming engine — same
/// instructions, same allocation profile, bit-identical results — while
/// the stream feed adds the windowed slot bookkeeping only streamed runs
/// pay for.
trait Feed {
    /// Re-initializes the workspace for this feed's run.
    fn prepare(&mut self, ws: &mut SimWorkspace, platform: &Platform, timeline: &Timeline);
    /// First sequence number available to runtime events, given the
    /// timeline length `k`.
    fn seq_base(&self, k: usize) -> u64;
    /// Release time of the next unreleased task, if any. May pull from the
    /// underlying source (one-task lookahead).
    fn peek_release(&mut self, ws: &SimWorkspace) -> Option<Time>;
    /// Pops the next release — only called right after [`Feed::peek_release`]
    /// returned `Some` — ensuring the task's slot exists in the window.
    fn pop_release(&mut self, ws: &mut SimWorkspace) -> TaskId;
    /// Arrival data of a live (windowed) task.
    fn arrival(&self, ws: &SimWorkspace, t: TaskId) -> TaskArrival;
    /// `true` once the run is over: every task released and completed.
    fn is_complete(&mut self, released: usize, completed: usize) -> bool;
    /// The `total` a [`SimError::Stalled`] reports. A stall requires the
    /// release stream to be exhausted, so for every feed this equals the
    /// full instance size.
    fn stall_total(&self, released: usize) -> usize;
    /// Per-iteration housekeeping; the streamed bounded-memory feed
    /// finalizes completed records and recycles their slots here.
    fn maintain(&mut self, ws: &mut SimWorkspace);
}

/// The materialized feed: releases stream from `ws.release_order` over a
/// task slice, exactly as the pre-streaming engine did.
struct SliceFeed<'s> {
    tasks: &'s [TaskArrival],
    /// Next entry of `ws.release_order` to stream.
    cursor: usize,
}

impl Feed for SliceFeed<'_> {
    fn prepare(&mut self, ws: &mut SimWorkspace, platform: &Platform, timeline: &Timeline) {
        ws.reset(platform, self.tasks, timeline);
        self.cursor = 0;
    }

    fn seq_base(&self, k: usize) -> u64 {
        // Sequence numbering is unchanged from the heap-resident layout:
        // release `i` owns seq `i`, timeline event `i` owns seq `n + i`,
        // and runtime events count on from `n + k` — so the merged stream
        // replays the exact historical `(time, seq)` event order.
        (self.tasks.len() + k) as u64
    }

    fn peek_release(&mut self, ws: &SimWorkspace) -> Option<Time> {
        ws.release_order
            .get(self.cursor)
            .map(|&i| self.tasks[i as usize].release)
    }

    fn pop_release(&mut self, ws: &mut SimWorkspace) -> TaskId {
        let i = ws.release_order[self.cursor];
        self.cursor += 1;
        TaskId(i as usize)
    }

    fn arrival(&self, _ws: &SimWorkspace, t: TaskId) -> TaskArrival {
        self.tasks[t.0]
    }

    fn is_complete(&mut self, _released: usize, completed: usize) -> bool {
        completed >= self.tasks.len()
    }

    fn stall_total(&self, _released: usize) -> usize {
        self.tasks.len()
    }

    fn maintain(&mut self, _ws: &mut SimWorkspace) {}
}

/// Recycle slots only once at least this many lead the window: keeps the
/// compaction memmove amortized O(1) per task without letting tiny windows
/// thrash.
const COMPACT_MIN: usize = 64;

/// The streamed feed: pulls a [`TaskSource`] with one task of lookahead
/// and materializes task slots into the workspace window on release.
///
/// In `recycle` mode it also finalizes completed records in id order —
/// folding the three objectives with exactly the arithmetic (and fold
/// order) of [`simulate_objectives_in`] — and compacts the window, so a
/// run's resident slot count stays proportional to the number of
/// *in-flight* tasks, not the instance size.
struct StreamFeed<'s> {
    source: &'s mut dyn TaskSource,
    lookahead: Option<TaskArrival>,
    exhausted: bool,
    /// Id the next pulled task will get (== tasks released so far).
    next_id: usize,
    /// Monotonicity guard: greatest release seen.
    last_release: Time,
    /// `false` retains every slot (trace builds); `true` recycles.
    recycle: bool,
    /// First task id not yet folded into the objective accumulators.
    finalize_cursor: usize,
    makespan: f64,
    max_flow: f64,
    sum_flow: f64,
    peak_live: usize,
    peak_resident: usize,
}

impl<'s> StreamFeed<'s> {
    fn new(source: &'s mut dyn TaskSource, recycle: bool) -> Self {
        StreamFeed {
            source,
            lookahead: None,
            exhausted: false,
            next_id: 0,
            last_release: Time::ZERO,
            recycle,
            finalize_cursor: 0,
            makespan: 0.0,
            max_flow: 0.0,
            sum_flow: 0.0,
            peak_live: 0,
            peak_resident: 0,
        }
    }

    /// Ensures the one-task lookahead holds the next arrival (or that the
    /// source is known to be exhausted), enforcing the non-decreasing
    /// release contract.
    fn fill(&mut self) {
        if self.lookahead.is_some() || self.exhausted {
            return;
        }
        match self.source.next_task() {
            Some(arr) => {
                assert!(
                    arr.release >= self.last_release,
                    "TaskSource contract violation: release {} of task {} decreases below \
                     the previous release {}",
                    arr.release,
                    self.next_id,
                    self.last_release,
                );
                self.last_release = arr.release;
                self.lookahead = Some(arr);
            }
            None => self.exhausted = true,
        }
    }
}

impl Feed for StreamFeed<'_> {
    fn prepare(&mut self, ws: &mut SimWorkspace, platform: &Platform, timeline: &Timeline) {
        ws.reset_streamed(platform, timeline);
    }

    fn seq_base(&self, k: usize) -> u64 {
        // Streamed releases never enter the heap and own no sequence
        // numbers; only the relative order of runtime seqs (and the
        // release > timeline > runtime tie priority, which `pop_next`
        // resolves structurally) is observable, so counting from `k`
        // replays the materialized event order exactly.
        k as u64
    }

    fn peek_release(&mut self, _ws: &SimWorkspace) -> Option<Time> {
        self.fill();
        self.lookahead.as_ref().map(|a| a.release)
    }

    fn pop_release(&mut self, ws: &mut SimWorkspace) -> TaskId {
        let arr = self.lookahead.take().expect("pop_release after peek");
        let t = TaskId(self.next_id);
        self.next_id += 1;
        ws.arrivals.push(arr);
        ws.phases.push(TaskPhase::Unreleased);
        ws.releases.push(Time::ZERO);
        ws.records.push(PartialRecord::default());
        self.peak_resident = self.peak_resident.max(ws.records.len());
        let live = ws.records.len() - (self.finalize_cursor - ws.window_start);
        self.peak_live = self.peak_live.max(live);
        t
    }

    fn arrival(&self, ws: &SimWorkspace, t: TaskId) -> TaskArrival {
        ws.arrivals[ws.slot(t)]
    }

    fn is_complete(&mut self, released: usize, completed: usize) -> bool {
        // Peek so an exhausted (e.g. empty) source terminates the loop —
        // the streamed analogue of `completed == tasks.len()`.
        self.fill();
        self.exhausted && completed >= released
    }

    fn stall_total(&self, released: usize) -> usize {
        // A stall implies the stream is exhausted, so every task of the
        // instance has been released: `released` is the instance size,
        // matching the materialized `tasks.len()`.
        released
    }

    fn maintain(&mut self, ws: &mut SimWorkspace) {
        if !self.recycle {
            return;
        }
        // Finalize the completed prefix in id order: the same values, in
        // the same fold order, as the end-of-run objective folds of the
        // materialized path, so the accumulated objectives are
        // bit-identical to them.
        loop {
            let slot = self.finalize_cursor - ws.window_start;
            if slot >= ws.records.len() || !ws.records[slot].done {
                break;
            }
            let r = &ws.records[slot];
            self.makespan = self.makespan.max(r.compute_end);
            self.max_flow = self.max_flow.max(r.compute_end - r.release);
            self.sum_flow += r.compute_end - r.release;
            self.finalize_cursor += 1;
        }
        // Recycle finalized slots once they dominate the window: amortized
        // O(1) per task, allocation-free (`drain` keeps capacity), and the
        // window length stays within 2× the live count + the threshold.
        let dead = self.finalize_cursor - ws.window_start;
        let live = ws.records.len() - dead;
        if dead >= COMPACT_MIN && dead >= live {
            ws.arrivals.drain(..dead);
            ws.phases.drain(..dead);
            ws.releases.drain(..dead);
            ws.records.drain(..dead);
            ws.window_start += dead;
        }
    }
}

struct Engine<'a, P: Probe, F: Feed> {
    platform: &'a Platform,
    feed: &'a mut F,
    config: &'a SimConfig,
    timeline: &'a Timeline,
    ws: &'a mut SimWorkspace,
    /// Instrumentation hooks. Monomorphized: with the default [`NoopProbe`]
    /// every hook call is an empty inlined body and the engine compiles to
    /// exactly the unprobed code (contract #11).
    probe: &'a mut P,
    clock: Time,
    seq: u64,
    link_busy_until: Time,
    /// The send currently occupying the port, with its heap sequence.
    in_flight: Option<(TaskId, SlaveId, u64)>,
    released_count: usize,
    completed_count: usize,
    steps: usize,
    /// `true` iff the run's tier is below `Clairvoyant` and the engine
    /// therefore maintains the learned per-slave estimates.
    learning: bool,
    /// Bumped on every absorbed observation (stays 0 when not learning).
    estimate_version: u64,
    /// Next entry of `ws.timeline_order` to stream.
    timeline_cursor: usize,
}

impl<'a, P: Probe, F: Feed> Engine<'a, P, F> {
    fn new(
        platform: &'a Platform,
        feed: &'a mut F,
        config: &'a SimConfig,
        timeline: &'a Timeline,
        ws: &'a mut SimWorkspace,
        probe: &'a mut P,
    ) -> Self {
        feed.prepare(ws, platform, timeline);
        let seq = feed.seq_base(timeline.events().len());
        Engine {
            platform,
            feed,
            config,
            timeline,
            ws,
            probe,
            clock: Time::ZERO,
            seq,
            link_busy_until: Time::ZERO,
            in_flight: None,
            released_count: 0,
            completed_count: 0,
            steps: 0,
            learning: config.info != InfoTier::Clairvoyant,
            estimate_version: 0,
            timeline_cursor: 0,
        }
    }

    /// Pops the next event across the three sources (release stream,
    /// timeline stream, runtime heap) in `(time, seq)` order; `None` when
    /// all are exhausted. With `at = Some(t)`, only an event at exactly `t`
    /// is popped (the batch-draining mode). Returns
    /// `(event, heap_seq, from_heap, time)`; `heap_seq` is meaningful only
    /// for heap events (the only ones cancellation can target). Cancelled
    /// heap entries are still popped and counted here — exactly as they
    /// were when they occupied the heap — and skipped by the caller.
    ///
    /// Time ties resolve by the historical sequence layout without any seq
    /// arithmetic: releases (seqs `0..n`) beat timeline events
    /// (`n..n+k`), which beat runtime events (`n+k..`); within each source
    /// the stream/heap order is already the seq order.
    fn pop_next(&mut self, at: Option<Time>) -> Option<(Event, u64, bool, Time)> {
        let release_t = self.feed.peek_release(self.ws);
        // Batch-drain fast path: while draining the batch at time `a`, no
        // source can hold anything earlier than `a`, and a release at `a`
        // beats every same-time candidate (it has the smallest seq) — so it
        // pops without consulting the other two sources at all. This makes
        // a bag-of-tasks release flood a straight cursor walk.
        if let (Some(a), Some(rt)) = (at, release_t) {
            if rt == a {
                let t = self.feed.pop_release(self.ws);
                return Some((Event::Release(t), 0, false, rt));
            }
        }
        let timeline_t = self
            .ws
            .timeline_order
            .get(self.timeline_cursor)
            .map(|&i| self.timeline.events()[i as usize].time);
        let heap_t = self.ws.heap.peek().map(|&Reverse(item)| item.time);

        if let Some(rt) = release_t {
            if timeline_t.is_none_or(|t| rt <= t) && heap_t.is_none_or(|t| rt <= t) {
                if at.is_some_and(|a| rt != a) {
                    return None;
                }
                let t = self.feed.pop_release(self.ws);
                return Some((Event::Release(t), 0, false, rt));
            }
        }
        if let Some(tt) = timeline_t {
            if heap_t.is_none_or(|t| tt <= t) {
                if at.is_some_and(|a| tt != a) {
                    return None;
                }
                let i = self.ws.timeline_order[self.timeline_cursor];
                self.timeline_cursor += 1;
                return Some((Event::Platform(i as usize), 0, false, tt));
            }
        }
        let ht = heap_t?;
        if at.is_some_and(|a| ht != a) {
            return None;
        }
        let Reverse(item) = self.ws.heap.pop().expect("heap top just peeked");
        Some((item.event, item.seq, true, item.time))
    }

    fn push(&mut self, time: Time, event: Event) -> u64 {
        let seq = self.seq;
        self.ws.heap.push(Reverse(HeapItem { time, seq, event }));
        self.seq += 1;
        seq
    }

    /// Returns a lost task to the master's pending queue and clears the
    /// partial record of its failed attempt (its release time survives).
    fn lose_task(&mut self, t: TaskId) {
        let slot = self.ws.slot(t);
        let r = &mut self.ws.records[slot];
        r.send_start = 0.0;
        r.send_end = 0.0;
        r.compute_start = 0.0;
        r.slave = 0;
        r.assigned = false;
        self.ws.phases[slot] = TaskPhase::Pending;
        self.ws.pending.push_back(t);
    }

    /// Recomputes the cached view of slave `j` at the current clock and
    /// records how long the result stays exact.
    ///
    /// The nominal ready estimate is the sequential fold
    /// `t ← max(t, avail_k) + p` over the outstanding tasks, anchored at
    /// `max(cur_pred_end, now)` (computing) or `now` (otherwise) — the same
    /// arithmetic, in the same order, as a from-scratch evaluation, so the
    /// cache is bitwise transparent. `now` only enters the fold through its
    /// first `max`: as long as the clock has not passed that anchor (the
    /// predicted end of the current computation, or the arrival instant of
    /// the in-flight head), the folded value is independent of `now` and the
    /// cache stays valid without recomputation; an idle slave's estimate is
    /// `now` itself and is only valid at the instant it was computed.
    fn recompute_view(&mut self, j: usize) {
        let now = self.clock.as_f64();
        self.probe.view_recompute(now, j);
        let p = self.platform.p(SlaveId(j));
        let rt = &self.ws.slaves[j];
        let mut t = now;
        for (k, ot) in rt.outstanding.iter().enumerate() {
            if k == 0 && rt.computing.is_some() {
                // Master's best guess for the current task: its predicted
                // end, but never before "now".
                t = rt.cur_pred_end.max(now);
            } else {
                t = t.max(ot.avail) + p;
            }
        }
        if rt.outstanding.is_empty() {
            // Idle: the fold is `now` itself and the view answers it
            // lazily (`SimView` substitutes `now` for idle rows), so the
            // cache never expires and idle slaves cost nothing per
            // callback.
            self.ws.view_valid_until[j] = f64::INFINITY;
        } else {
            let anchor = if rt.computing.is_some() {
                rt.cur_pred_end
            } else {
                rt.outstanding.front().expect("non-empty queue").avail
            };
            let valid_until = anchor.max(now);
            self.ws.view_valid_until[j] = valid_until;
            self.ws
                .view_expiry
                .push(Reverse((valid_until.to_bits(), j as u32)));
        }
        self.ws.views.outstanding[j] = rt.outstanding.len();
        self.ws.views.ready_estimate[j] = t;
        self.ws.views.completed[j] = rt.completed;
        self.ws.views.available[j] = !rt.down;
    }

    /// Marks slave `j`'s cached view stale after an event touched it, and
    /// journals the touch for the scheduler-side decision kernels. The
    /// sentinel check makes re-marking within one refresh cycle free (and
    /// keeps the journal deduplicated per cycle, which is sound because
    /// kernels only sync at scheduler callbacks, which only run on fully
    /// refreshed views).
    #[inline]
    fn mark_view_dirty(&mut self, j: usize) {
        if self.ws.view_valid_until[j] != f64::NEG_INFINITY {
            self.ws.view_valid_until[j] = f64::NEG_INFINITY;
            self.ws.view_dirty.push(j as u32);
            self.ws.journal.touch(j as u32);
        }
    }

    /// Brings every cached slave view up to date with the current clock and
    /// makes the pending ring contiguous, so [`Engine::view`] is a pure
    /// borrow. Called before every scheduler callback.
    fn refresh_views(&mut self) {
        if !self.ws.pending.as_slices().1.is_empty() {
            self.ws.pending.make_contiguous();
        }
        // Event-touched slaves, from the dirty stack.
        while let Some(j) = self.ws.view_dirty.pop() {
            self.recompute_view(j as usize);
        }
        // Busy slaves whose cached estimate the clock has passed (only
        // possible when a computation outlives its nominal prediction —
        // perturbed sizes or drift). Heap entries are validated against
        // the live `view_valid_until`; a recompute at the current instant
        // re-anchors at `now`, whose entry no longer satisfies the strict
        // `<`, so this loop terminates.
        let now_bits = self.clock.as_f64().to_bits();
        while let Some(&Reverse((bits, j))) = self.ws.view_expiry.peek() {
            if bits >= now_bits {
                break;
            }
            self.ws.view_expiry.pop();
            if self.ws.view_valid_until[j as usize].to_bits() == bits {
                self.recompute_view(j as usize);
            }
        }
        #[cfg(debug_assertions)]
        self.assert_views_match_fresh();
    }

    /// Debug oracle: every cached view must be bit-identical to a
    /// from-scratch recomputation (the contract `recompute_view` documents).
    #[cfg(debug_assertions)]
    fn assert_views_match_fresh(&self) {
        let now = self.clock.as_f64();
        for (j, rt) in self.ws.slaves.iter().enumerate() {
            let p = self.platform.p(SlaveId(j));
            let mut t = now;
            for (k, ot) in rt.outstanding.iter().enumerate() {
                if k == 0 && rt.computing.is_some() {
                    t = rt.cur_pred_end.max(now);
                } else {
                    t = t.max(ot.avail) + p;
                }
            }
            let v = &self.ws.views;
            // Idle rows are answered lazily by the view (`now`, which is
            // the fold over an empty queue by construction); their stored
            // column may be stale, but the *effective* value must match.
            let effective = if rt.outstanding.is_empty() {
                assert!(
                    self.ws.view_valid_until[j].is_infinite()
                        || self.ws.view_valid_until[j] == f64::NEG_INFINITY,
                    "idle slave {j} must be lazily valid or dirty"
                );
                now
            } else {
                assert!(
                    self.ws.view_valid_until[j] >= now,
                    "busy slave {j}: view overdue (valid until {} < now {now})",
                    self.ws.view_valid_until[j]
                );
                v.ready_estimate[j]
            };
            assert_eq!(
                effective.to_bits(),
                t.to_bits(),
                "slave {j}: cached estimate {effective} != fresh {t} at t={now}"
            );
            assert_eq!(v.outstanding[j], rt.outstanding.len(), "slave {j} count");
            assert_eq!(v.completed[j], rt.completed, "slave {j} completed");
            assert_eq!(v.available[j], !rt.down, "slave {j} availability");
        }
    }

    fn view(&self) -> SimView<'_> {
        let (pending, wrapped) = self.ws.pending.as_slices();
        debug_assert!(wrapped.is_empty(), "refresh_views keeps pending contiguous");
        SimView {
            now: self.clock,
            platform: self.platform,
            tier: self.config.info,
            link_busy_until: self.link_busy_until,
            slaves: &self.ws.views,
            estimates: &self.ws.estimates,
            estimate_version: self.estimate_version,
            pending,
            releases: &self.ws.releases,
            release_base: self.ws.window_start,
            horizon: self.config.horizon_hint,
            released_count: self.released_count,
            completed_count: self.completed_count,
            journal: Some(&self.ws.journal),
            idle_lazy: true,
        }
    }

    fn apply(&mut self, event: Event) -> Option<SchedulerEvent> {
        let now = self.clock.as_f64();
        match event {
            Event::Release(t) => {
                let release = self.feed.arrival(self.ws, t).release;
                let slot = self.ws.slot(t);
                self.ws.releases[slot] = release;
                self.ws.records[slot].release = release.as_f64();
                self.ws.phases[slot] = TaskPhase::Pending;
                self.ws.pending.push_back(t);
                self.released_count += 1;
                self.probe.task_released(now, t.0);
                Some(SchedulerEvent::Released(t))
            }
            Event::SendComplete(t, j) => {
                self.in_flight = None;
                let slot = self.ws.slot(t);
                self.mark_view_dirty(j.0);
                if self.learning {
                    // The master owns the port: the transfer's duration is
                    // its own observation (valid even when the destination
                    // turned out to be down — the port was occupied).
                    let duration = now - self.ws.records[slot].send_start;
                    self.ws.estimates.observe_send(j.0, duration);
                    self.estimate_version += 1;
                    self.probe.estimator_update(now, j.0);
                }
                let rt = &mut self.ws.slaves[j.0];
                if rt.down {
                    // Arrived at a failed slave: the transfer is wasted and
                    // the task returns to the pending queue.
                    let pos = rt
                        .outstanding
                        .iter()
                        .position(|o| o.id == t)
                        .expect("in-flight task must be outstanding");
                    rt.outstanding.remove(pos);
                    self.lose_task(t);
                    self.probe.send_complete(now, t.0, j.0, false);
                    return Some(SchedulerEvent::SendCompleted(t, j));
                }
                self.ws.records[slot].send_end = now;
                // The slave now actually has the task. Sends are serial on
                // the one port, so the arriving task is the most recent push.
                match rt.outstanding.back_mut() {
                    Some(ot) if ot.id == t => ot.avail = now,
                    _ => {
                        if let Some(ot) = rt.outstanding.iter_mut().find(|o| o.id == t) {
                            ot.avail = now;
                        }
                    }
                }
                self.probe.send_complete(now, t.0, j.0, true);
                if rt.computing.is_none() {
                    self.start_compute(t, j);
                } else {
                    rt.queue.push_back(t);
                }
                Some(SchedulerEvent::SendCompleted(t, j))
            }
            Event::ComputeComplete(t, j) => {
                let slot = self.ws.slot(t);
                if self.learning {
                    // Computes are FIFO, so the master can date the start
                    // of this computation from its own observations (the
                    // later of the task's arrival and the previous
                    // completion) — which is exactly what the engine
                    // recorded in `compute_start`.
                    let duration = now - self.ws.records[slot].compute_start;
                    self.ws.estimates.observe_compute(j.0, duration);
                    self.ws.estimates.end_compute(j.0);
                    self.estimate_version += 1;
                    self.probe.estimator_update(now, j.0);
                }
                self.probe.compute_complete(now, t.0, j.0);
                self.ws.records[slot].compute_end = now;
                self.ws.records[slot].done = true;
                self.ws.phases[slot] = TaskPhase::Done;
                self.completed_count += 1;
                self.mark_view_dirty(j.0);
                let rt = &mut self.ws.slaves[j.0];
                debug_assert_eq!(rt.computing, Some(t));
                rt.computing = None;
                rt.completed += 1;
                // Computes are FIFO: the finished task is the head.
                let head = rt
                    .outstanding
                    .pop_front()
                    .expect("completed task must be outstanding");
                debug_assert_eq!(head.id, t);
                if let Some(next) = rt.queue.pop_front() {
                    self.start_compute(next, j);
                }
                Some(SchedulerEvent::ComputeCompleted(t, j))
            }
            Event::Platform(i) => self.apply_platform_event(i),
            Event::Wake => Some(SchedulerEvent::Wake),
        }
    }

    fn apply_platform_event(&mut self, i: usize) -> Option<SchedulerEvent> {
        let e = self.timeline.events()[i];
        let j = e.slave;
        if j.0 >= self.platform.num_slaves() {
            return None; // scenario written for a larger platform: ignore
        }
        match e.kind {
            PlatformEventKind::Fail => {
                if self.ws.slaves[j.0].down {
                    return None;
                }
                // Abort a transfer in flight towards the failing slave: the
                // port frees immediately and its completion event is voided.
                if let Some((_, target, seq)) = self.in_flight {
                    if target == j {
                        self.ws.cancelled.insert(seq);
                        self.link_busy_until = self.clock;
                        self.in_flight = None;
                    }
                }
                self.mark_view_dirty(j.0);
                if self.learning {
                    // The master observed the failure: whatever was
                    // computing is gone (no duration is learned from it).
                    self.ws.estimates.end_compute(j.0);
                }
                let ws = &mut *self.ws;
                let rt = &mut ws.slaves[j.0];
                rt.down = true;
                let cancel_seq = rt.computing.take().map(|_| rt.compute_seq);
                rt.queue.clear();
                ws.lost.clear();
                ws.lost.extend(rt.outstanding.drain(..).map(|o| o.id));
                if let Some(seq) = cancel_seq {
                    self.ws.cancelled.insert(seq);
                }
                self.probe.slave_failed(self.clock.as_f64(), j.0);
                // Lost tasks re-enter `pending` in their send order, so the
                // re-release order is deterministic and observable.
                for k in 0..self.ws.lost.len() {
                    let t = self.ws.lost[k];
                    self.lose_task(t);
                    self.probe.task_lost(self.clock.as_f64(), t.0, j.0);
                }
                Some(SchedulerEvent::SlaveFailed(j))
            }
            PlatformEventKind::Recover => {
                if !self.ws.slaves[j.0].down {
                    return None;
                }
                // The slave restarts empty. A transfer still in flight (the
                // master gambled on the recovery) stays in `outstanding` and
                // is delivered normally at its send-complete.
                self.ws.slaves[j.0].down = false;
                self.mark_view_dirty(j.0);
                self.probe.slave_recovered(self.clock.as_f64(), j.0);
                Some(SchedulerEvent::SlaveRecovered(j))
            }
            PlatformEventKind::SetLinkFactor(f) => {
                self.ws.link_factor[j.0] = f;
                None // drift is invisible: schedulers stay speed-oblivious
            }
            PlatformEventKind::SetSpeedFactor(f) => {
                self.ws.speed_factor[j.0] = f;
                None
            }
        }
    }

    fn start_compute(&mut self, t: TaskId, j: SlaveId) {
        let now = self.clock.as_f64();
        self.probe.compute_start(now, t.0, j.0);
        // Billed at the *effective* speed in force when the computation
        // starts; the nominal estimate below is what schedulers see. With
        // a factor of exactly 1.0 the arithmetic is bit-identical to the
        // static engine.
        let size_p = self.feed.arrival(self.ws, t).size_p;
        let slot = self.ws.slot(t);
        let billed_p = self.ws.speed_factor[j.0] * size_p;
        let actual = self.platform.p(j) * billed_p;
        self.ws.records[slot].compute_start = now;
        self.ws.records[slot].billed_p = billed_p;
        let seq = self.push(Time::new(now + actual), Event::ComputeComplete(t, j));
        self.mark_view_dirty(j.0);
        if self.learning {
            // Observable: with FIFO computes, a computation starts exactly
            // when the engine starts one.
            self.ws.estimates.begin_compute(j.0, now);
        }
        let rt = &mut self.ws.slaves[j.0];
        rt.computing = Some(t);
        rt.compute_seq = seq;
        rt.cur_pred_end = now + self.platform.p(j); // nominal estimate
                                                    // The head of `outstanding` must be the task that starts computing:
                                                    // sends are FIFO per slave and computes are FIFO, so this holds.
        debug_assert_eq!(rt.outstanding.front().map(|o| o.id), Some(t));
    }

    fn execute_send(&mut self, t: TaskId, j: SlaveId) -> Result<(), SimError> {
        let now = self.clock;
        if self.link_busy_until > now {
            return Err(SimError::InvalidDecision {
                at: now,
                reason: format!(
                    "send of {t} while the port is busy until {}",
                    self.link_busy_until
                ),
            });
        }
        // O(1) membership check through the phase slot map (no queue scan);
        // an out-of-range id — including a recycled streamed slot, which is
        // necessarily `Done` — is "never released" and takes the same error.
        let pending =
            t.0.checked_sub(self.ws.window_start)
                .and_then(|s| self.ws.phases.get(s))
                == Some(&TaskPhase::Pending);
        if !pending {
            return Err(SimError::InvalidDecision {
                at: now,
                reason: format!(
                    "send of {t} which is not pending (unreleased, or already assigned)"
                ),
            });
        }
        if j.0 >= self.platform.num_slaves() {
            return Err(SimError::InvalidDecision {
                at: now,
                reason: format!("send of {t} to unknown slave index {}", j.0),
            });
        }
        // Every paper heuristic dispatches the oldest pending task, so the
        // O(1) front pop is the hot path; cherry-picks fall back to a scan.
        if self.ws.pending.front() == Some(&t) {
            self.ws.pending.pop_front();
        } else {
            let pos = self
                .ws
                .pending
                .iter()
                .position(|&x| x == t)
                .expect("task in Pending phase is in the pending queue");
            self.ws.pending.remove(pos);
        }
        let size_c = self.feed.arrival(self.ws, t).size_c;
        let slot = self.ws.slot(t);
        self.ws.phases[slot] = TaskPhase::Assigned;
        let billed_c = self.ws.link_factor[j.0] * size_c;
        let actual_c = self.platform.c(j) * billed_c;
        let nominal_c = self.platform.c(j);
        self.ws.records[slot].send_start = now.as_f64();
        self.ws.records[slot].billed_c = billed_c;
        self.ws.records[slot].slave = j.0;
        self.ws.records[slot].assigned = true;
        self.link_busy_until = now + actual_c;
        self.mark_view_dirty(j.0);
        self.ws.slaves[j.0].outstanding.push_back(OutTask {
            id: t,
            avail: now.as_f64() + nominal_c,
        });
        let seq = self.push(self.link_busy_until, Event::SendComplete(t, j));
        self.in_flight = Some((t, j, seq));
        self.probe.send_start(now.as_f64(), t.0, j.0);
        Ok(())
    }

    /// Batched form of [`Engine::step_budget`]: charges `k` steps at once.
    fn charge_steps(&mut self, k: usize) -> Result<(), SimError> {
        self.steps += k;
        if self.steps > self.config.max_steps {
            self.probe
                .budget_abort(self.clock.as_f64(), self.steps as u64);
            Err(SimError::BudgetExhausted {
                max_steps: self.config.max_steps,
            })
        } else {
            Ok(())
        }
    }

    fn step_budget(&mut self) -> Result<(), SimError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            self.probe
                .budget_abort(self.clock.as_f64(), self.steps as u64);
            Err(SimError::BudgetExhausted {
                max_steps: self.config.max_steps,
            })
        } else {
            Ok(())
        }
    }
}

/// Runs `scheduler` on `tasks` over `platform` and returns the trace.
///
/// The scheduler sees nominal task sizes; the engine bills actual
/// (possibly perturbed) ones. Fails if the scheduler stalls, produces an
/// invalid decision, or exhausts the step budget.
///
/// Allocates a fresh [`SimWorkspace`] internally; use [`simulate_in`] to
/// amortize buffer set-up over many runs.
///
/// # Examples
/// ```
/// use mss_sim::{simulate, SimConfig, Platform, bag_of_tasks};
/// use mss_sim::{Decision, OnlineScheduler, SchedulerEvent, SimView, SlaveId};
///
/// /// Sends every pending task to slave 0 as soon as the port is free.
/// struct FirstSlave;
/// impl OnlineScheduler for FirstSlave {
///     fn name(&self) -> String { "first".into() }
///     fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
///         match (view.link_idle(), view.pending_tasks().first()) {
///             (true, Some(&task)) => Decision::Send { task, slave: SlaveId(0) },
///             _ => Decision::Idle,
///         }
///     }
/// }
///
/// // One slave with c = 1, p = 2: three tasks pipeline to makespan 1 + 3·2.
/// let platform = Platform::from_vectors(&[1.0], &[2.0]);
/// let trace = simulate(&platform, &bag_of_tasks(3), &SimConfig::default(),
///                      &mut FirstSlave).unwrap();
/// assert_eq!(trace.makespan(), 7.0);
/// ```
pub fn simulate(
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<Trace, SimError> {
    simulate_with_events(platform, tasks, config, &Timeline::EMPTY, scheduler)
}

/// [`simulate`] with caller-provided buffers: runs entirely inside `ws`,
/// so repeated calls (a sweep, a benchmark loop) allocate nothing once the
/// workspace is warm. Results are identical to [`simulate`].
pub fn simulate_in(
    ws: &mut SimWorkspace,
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<Trace, SimError> {
    simulate_with_events_in(ws, platform, tasks, config, &Timeline::EMPTY, scheduler)
}

/// Like [`simulate`], over a *dynamic* platform: `timeline` scripts slave
/// failures, recoveries, and link/speed drift (see [`crate::events`]).
///
/// Tasks on a failing slave are lost and re-enter the pending queue; sends
/// to a down slave are permitted (the master may be fault-oblivious or
/// gamble on a recovery) but are lost on arrival while the slave is down.
/// With an empty timeline this is exactly [`simulate`], bit for bit.
///
/// # Examples
/// ```
/// use mss_sim::{simulate, simulate_with_events, SimConfig, Platform, Timeline,
///               bag_of_tasks};
/// # use mss_sim::{Decision, OnlineScheduler, SchedulerEvent, SimView, SlaveId};
/// # struct FirstSlave;
/// # impl OnlineScheduler for FirstSlave {
/// #     fn name(&self) -> String { "first".into() }
/// #     fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
/// #         match (view.link_idle(), view.pending_tasks().first()) {
/// #             (true, Some(&task)) => Decision::Send { task, slave: SlaveId(0) },
/// #             _ => Decision::Idle,
/// #         }
/// #     }
/// # }
/// let platform = Platform::from_vectors(&[1.0], &[2.0]);
/// let tasks = bag_of_tasks(3);
/// // An empty timeline is bit-for-bit the static engine.
/// let dynamic = simulate_with_events(&platform, &tasks, &SimConfig::default(),
///                                    &Timeline::EMPTY, &mut FirstSlave).unwrap();
/// let static_ = simulate(&platform, &tasks, &SimConfig::default(),
///                        &mut FirstSlave).unwrap();
/// assert_eq!(dynamic, static_);
/// ```
pub fn simulate_with_events(
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<Trace, SimError> {
    let mut ws = SimWorkspace::new();
    simulate_with_events_in(&mut ws, platform, tasks, config, timeline, scheduler)
}

/// [`simulate_with_events`] with caller-provided buffers (see
/// [`simulate_in`]).
pub fn simulate_with_events_in(
    ws: &mut SimWorkspace,
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<Trace, SimError> {
    simulate_with_probe_in(
        ws,
        platform,
        tasks,
        config,
        timeline,
        scheduler,
        &mut NoopProbe,
    )
}

/// [`simulate_with_events_in`] with an instrumentation [`Probe`] observing
/// every engine boundary (see [`mss_obs::Probe`] for the hook catalogue).
///
/// The probe is an observer only: for any probe, the returned trace (or
/// error) is bit-identical to the unprobed run — probes cannot influence
/// the engine, only watch it. With [`NoopProbe`] the monomorphized engine
/// *is* the unprobed engine, instruction for instruction.
///
/// # Examples
/// ```
/// use mss_sim::{simulate_with_probe_in, SimConfig, SimWorkspace, Platform,
///               Timeline, bag_of_tasks};
/// use mss_obs::RunCounters;
/// # use mss_sim::{Decision, OnlineScheduler, SchedulerEvent, SimView, SlaveId};
/// # struct FirstSlave;
/// # impl OnlineScheduler for FirstSlave {
/// #     fn name(&self) -> String { "first".into() }
/// #     fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
/// #         match (view.link_idle(), view.pending_tasks().first()) {
/// #             (true, Some(&task)) => Decision::Send { task, slave: SlaveId(0) },
/// #             _ => Decision::Idle,
/// #         }
/// #     }
/// # }
/// let platform = Platform::from_vectors(&[1.0], &[2.0]);
/// let mut ws = SimWorkspace::new();
/// let mut counters = RunCounters::new();
/// let trace = simulate_with_probe_in(&mut ws, &platform, &bag_of_tasks(3),
///                                    &SimConfig::default(), &Timeline::EMPTY,
///                                    &mut FirstSlave, &mut counters).unwrap();
/// assert_eq!(trace.makespan(), 7.0);
/// assert_eq!(counters.sends_delivered, 3);
/// assert_eq!(counters.computes_completed, 3);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_probe_in<P: Probe>(
    ws: &mut SimWorkspace,
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
    probe: &mut P,
) -> Result<Trace, SimError> {
    drive(ws, platform, tasks, config, timeline, scheduler, probe)?;
    Ok(trace_from(ws))
}

/// The objective values of one completed run.
///
/// Computed directly from the engine's internal records with the *same
/// folds, in the same order,* as [`Trace::makespan`], [`Trace::max_flow`]
/// and [`Trace::sum_flow`], so the numbers are bit-identical to going
/// through a [`Trace`] — without materializing one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunObjectives {
    /// Makespan `max C_i` (0 for an empty run).
    pub makespan: f64,
    /// Maximum response time `max (C_i − r_i)`.
    pub max_flow: f64,
    /// Sum of response times `Σ (C_i − r_i)`.
    pub sum_flow: f64,
}

/// [`simulate_with_events_in`] for callers that only need the objective
/// values: skips building the per-task [`Trace`] (the one remaining
/// per-run output allocation), which is what a sweep over thousands of
/// cells measures anyway. Results are bit-identical to computing the same
/// objectives from the returned trace.
pub fn simulate_objectives_in(
    ws: &mut SimWorkspace,
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<RunObjectives, SimError> {
    simulate_objectives_with_probe_in(
        ws,
        platform,
        tasks,
        config,
        timeline,
        scheduler,
        &mut NoopProbe,
    )
}

/// [`simulate_objectives_in`] with an instrumentation [`Probe`] (see
/// [`simulate_with_probe_in`]). This is what a counting sweep runs per
/// cell: objectives only, hooks tallied thread-locally.
#[allow(clippy::too_many_arguments)]
pub fn simulate_objectives_with_probe_in<P: Probe>(
    ws: &mut SimWorkspace,
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
    probe: &mut P,
) -> Result<RunObjectives, SimError> {
    drive(ws, platform, tasks, config, timeline, scheduler, probe)?;
    let records = &ws.records;
    Ok(RunObjectives {
        makespan: records.iter().map(|r| r.compute_end).fold(0.0, f64::max),
        max_flow: records
            .iter()
            .map(|r| r.compute_end - r.release)
            .fold(0.0, f64::max),
        sum_flow: records.iter().map(|r| r.compute_end - r.release).sum(),
    })
}

/// Result of a bounded-memory streamed run (see
/// [`simulate_streamed_objectives_in`]): the objective values plus the
/// memory telemetry the streaming contract is stated in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamStats {
    /// The run's objectives — bit-identical to the materialized
    /// [`simulate_objectives_in`] on the same instance.
    pub objectives: RunObjectives,
    /// Tasks pulled from the source (the instance size).
    pub tasks: usize,
    /// High-water mark of *live* task slots: released tasks whose record
    /// had not yet been finalized. This is what the bounded-memory
    /// contract bounds by O(slaves + outstanding), independent of the
    /// instance size.
    pub peak_live_slots: usize,
    /// High-water mark of *resident* task slots (live + finalized slots
    /// not yet recycled). Stays within 2× the live peak plus the
    /// compaction threshold.
    pub peak_resident_slots: usize,
}

/// Runs `scheduler` over the tasks pulled from `source` and returns the
/// full [`Trace`].
///
/// Wherever the instance also fits in memory, the result is bit-identical
/// to materializing the stream into a `Vec` and calling [`simulate`] —
/// streaming is an evaluation strategy, not a model change. Because a
/// trace is per-task output, this entry point retains every task record
/// (memory grows with the instance); use
/// [`simulate_streamed_objectives_in`] for the bounded-memory mode.
///
/// # Panics
/// Panics if `source` violates the non-decreasing release contract.
///
/// # Examples
/// ```
/// use mss_sim::{simulate, simulate_streamed, SimConfig, Platform, TaskArrival,
///               TaskSource, bag_of_tasks};
/// # use mss_sim::{Decision, OnlineScheduler, SchedulerEvent, SimView, SlaveId};
/// # struct FirstSlave;
/// # impl OnlineScheduler for FirstSlave {
/// #     fn name(&self) -> String { "first".into() }
/// #     fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
/// #         match (view.link_idle(), view.pending_tasks().first()) {
/// #             (true, Some(&task)) => Decision::Send { task, slave: SlaveId(0) },
/// #             _ => Decision::Idle,
/// #         }
/// #     }
/// # }
/// struct Bag(usize, usize);
/// impl TaskSource for Bag {
///     fn next_task(&mut self) -> Option<TaskArrival> {
///         (self.0 < self.1).then(|| { self.0 += 1; TaskArrival::at(0.0) })
///     }
///     fn len_hint(&self) -> Option<usize> { Some(self.1) }
///     fn reset(&mut self) { self.0 = 0; }
/// }
///
/// let platform = Platform::from_vectors(&[1.0], &[2.0]);
/// let streamed = simulate_streamed(&platform, &mut Bag(0, 3), &SimConfig::default(),
///                                  &mut FirstSlave).unwrap();
/// let materialized = simulate(&platform, &bag_of_tasks(3), &SimConfig::default(),
///                             &mut FirstSlave).unwrap();
/// assert_eq!(streamed, materialized);
/// ```
pub fn simulate_streamed(
    platform: &Platform,
    source: &mut dyn TaskSource,
    config: &SimConfig,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<Trace, SimError> {
    let mut ws = SimWorkspace::new();
    simulate_streamed_with_probe_in(
        &mut ws,
        platform,
        source,
        config,
        &Timeline::EMPTY,
        scheduler,
        &mut NoopProbe,
    )
}

/// [`simulate_streamed`] with caller-provided buffers, a dynamic-platform
/// [`Timeline`], and an instrumentation [`Probe`] (see
/// [`simulate_with_probe_in`]). Retains every task record to build the
/// trace; memory grows with the instance.
#[allow(clippy::too_many_arguments)]
pub fn simulate_streamed_with_probe_in<P: Probe>(
    ws: &mut SimWorkspace,
    platform: &Platform,
    source: &mut dyn TaskSource,
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
    probe: &mut P,
) -> Result<Trace, SimError> {
    let mut feed = StreamFeed::new(source, false);
    drive_feed(ws, platform, &mut feed, config, timeline, scheduler, probe)?;
    Ok(trace_from(ws))
}

/// The bounded-memory streamed run: pulls tasks from `source`, recycles a
/// task's slot once its record is finalized, and returns the objectives
/// plus the slot-window telemetry — without ever holding the instance in
/// memory. Peak resident memory is O(slaves + outstanding tasks), so a
/// million-task instance runs in a working set of a few hundred slots.
///
/// The objectives are bit-identical to [`simulate_objectives_in`] over
/// the materialized stream: finalization folds each record in task-id
/// order with the same float arithmetic.
pub fn simulate_streamed_objectives_in(
    ws: &mut SimWorkspace,
    platform: &Platform,
    source: &mut dyn TaskSource,
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<StreamStats, SimError> {
    simulate_streamed_objectives_with_probe_in(
        ws,
        platform,
        source,
        config,
        timeline,
        scheduler,
        &mut NoopProbe,
    )
}

/// [`simulate_streamed_objectives_in`] with an instrumentation [`Probe`].
/// Probe hooks observe the same event stream as the materialized run, so
/// digest and telemetry probes produce bit-identical output — but hooks
/// receive task *ids*, not table indices: a probe must not assume it can
/// index a task table of the instance size (contract #13).
#[allow(clippy::too_many_arguments)]
pub fn simulate_streamed_objectives_with_probe_in<P: Probe>(
    ws: &mut SimWorkspace,
    platform: &Platform,
    source: &mut dyn TaskSource,
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
    probe: &mut P,
) -> Result<StreamStats, SimError> {
    let mut feed = StreamFeed::new(source, true);
    drive_feed(ws, platform, &mut feed, config, timeline, scheduler, probe)?;
    // The loop finalizes after every batch, so a completed run has folded
    // every record already; this is belt-and-braces for the empty run.
    feed.maintain(ws);
    Ok(StreamStats {
        objectives: RunObjectives {
            makespan: feed.makespan,
            max_flow: feed.max_flow,
            sum_flow: feed.sum_flow,
        },
        tasks: feed.next_id,
        peak_live_slots: feed.peak_live,
        peak_resident_slots: feed.peak_resident,
    })
}

/// Builds the [`Trace`] out of a driven workspace.
fn trace_from(ws: &SimWorkspace) -> Trace {
    let records = ws
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            debug_assert!(r.done);
            TaskRecord {
                task: TaskId(i),
                release: Time::new(r.release),
                slave: SlaveId(r.slave),
                send_start: Time::new(r.send_start),
                send_end: Time::new(r.send_end),
                compute_start: Time::new(r.compute_start),
                compute_end: Time::new(r.compute_end),
                size_c: r.billed_c,
                size_p: r.billed_p,
            }
        })
        .collect();
    Trace::new(records)
}

/// Reports a scheduler's callback answer through the probe seam, in the
/// dependency-free `(tag, a, b)` encoding documented on
/// [`Probe::decision`]. Called only for decisions the engine actually
/// acts on — the `debug_assertions` elision oracle never reports its
/// shadow answers, keeping decision streams build-invariant.
fn probe_decision<P: Probe>(probe: &mut P, now: f64, decision: &Decision) {
    match decision {
        Decision::Idle => probe.decision(now, 0, 0, 0),
        Decision::Send { task, slave } => probe.decision(now, 1, task.0, slave.0 as u64),
        Decision::WakeAt(t) => probe.decision(now, 2, 0, t.as_f64().to_bits()),
    }
}

/// Runs the event loop to completion over a materialized task slice,
/// leaving the run's records in `ws`.
fn drive<P: Probe>(
    ws: &mut SimWorkspace,
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
    probe: &mut P,
) -> Result<(), SimError> {
    let mut feed = SliceFeed { tasks, cursor: 0 };
    drive_feed(ws, platform, &mut feed, config, timeline, scheduler, probe)
}

/// Runs the event loop to completion over any [`Feed`]. Monomorphized per
/// feed: with [`SliceFeed`] this is the historical materialized engine,
/// instruction for instruction.
fn drive_feed<P: Probe, F: Feed>(
    ws: &mut SimWorkspace,
    platform: &Platform,
    feed: &mut F,
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
    probe: &mut P,
) -> Result<(), SimError> {
    // Capability check before anything runs: a scheduler must never see a
    // view weaker than the tier it declared it stays live under.
    if config.info < scheduler.min_tier() {
        return Err(SimError::InsufficientInformation {
            granted: config.info,
            required: scheduler.min_tier(),
        });
    }
    let mut engine = Engine::new(platform, feed, config, timeline, ws, probe);
    // Poll-driven schedulers promise to answer Idle (with no state change)
    // whenever the port is busy or nothing is pending, so those
    // notification callbacks can be elided without observable effect.
    let poll_driven = scheduler.poll_driven();

    engine.refresh_views();
    scheduler.init(&engine.view());

    while !engine
        .feed
        .is_complete(engine.released_count, engine.completed_count)
    {
        engine.step_budget()?;

        let Some((first_event, first_seq, first_from_heap, first_time)) = engine.pop_next(None)
        else {
            // Nothing scheduled: give the scheduler one last chance to act.
            engine.refresh_views();
            engine.probe.callback(engine.clock.as_f64());
            let decision = scheduler.on_event(&engine.view(), SchedulerEvent::PortIdle);
            probe_decision(&mut *engine.probe, engine.clock.as_f64(), &decision);
            match decision {
                Decision::Send { task, slave } => {
                    engine.execute_send(task, slave)?;
                    continue;
                }
                Decision::WakeAt(t) if t > engine.clock => {
                    engine.push(t, Event::Wake);
                    continue;
                }
                _ => {
                    return Err(SimError::Stalled {
                        at: engine.clock,
                        completed: engine.completed_count,
                        total: engine.feed.stall_total(engine.released_count),
                    })
                }
            }
        };

        // Apply the whole batch of simultaneous events first, so the
        // scheduler always decides on a fully settled state (the head of
        // the batch is already popped; drain the rest at the same time).
        engine.clock = first_time;
        engine.ws.notifications.clear();
        let mut next = Some((first_event, first_seq, first_from_heap));
        let mut batch_steps = 0usize;
        while let Some((event, seq, from_heap)) = next {
            if !(from_heap && !engine.ws.cancelled.is_empty() && engine.ws.cancelled.remove(&seq)) {
                batch_steps += 1;
                if let Some(n) = engine.apply(event) {
                    engine.ws.notifications.push(n);
                }
            }
            next = engine
                .pop_next(Some(first_time))
                .map(|(e, s, f, _)| (e, s, f));
        }
        // Budget accounting is batched: one add + one check per batch
        // instead of per event. A budget crossing mid-batch surfaces as the
        // same `BudgetExhausted` error before any callback of the batch is
        // delivered — errored runs return nothing else, so the relaxation
        // is unobservable.
        engine.charge_steps(batch_steps)?;

        // Deliver notifications; each may carry a decision. (Decisions can
        // change engine state, never extend this batch's notifications.)
        for i in 0..engine.ws.notifications.len() {
            if poll_driven
                && (engine.link_busy_until > engine.clock || engine.ws.pending.is_empty())
            {
                // The poll-driven contract makes this callback a no-op; the
                // debug oracle performs it anyway and holds the promise.
                engine.probe.callback_elided(engine.clock.as_f64());
                #[cfg(debug_assertions)]
                {
                    engine.refresh_views();
                    let decision = scheduler.on_event(&engine.view(), engine.ws.notifications[i]);
                    assert!(
                        matches!(decision, Decision::Idle),
                        "poll_driven scheduler acted on a busy/empty callback: {decision:?}"
                    );
                }
                continue;
            }
            let n = engine.ws.notifications[i];
            engine.refresh_views();
            engine.probe.callback(engine.clock.as_f64());
            let decision = scheduler.on_event(&engine.view(), n);
            probe_decision(&mut *engine.probe, engine.clock.as_f64(), &decision);
            match decision {
                Decision::Send { task, slave } => engine.execute_send(task, slave)?,
                Decision::WakeAt(t) if t > engine.clock => {
                    engine.push(t, Event::Wake);
                }
                _ => {}
            }
        }

        // Poll while the port is idle and the scheduler keeps acting.
        loop {
            engine.step_budget()?;
            if engine.link_busy_until > engine.clock || engine.ws.pending.is_empty() {
                break;
            }
            engine.refresh_views();
            engine.probe.callback(engine.clock.as_f64());
            let decision = scheduler.on_event(&engine.view(), SchedulerEvent::PortIdle);
            probe_decision(&mut *engine.probe, engine.clock.as_f64(), &decision);
            match decision {
                Decision::Send { task, slave } => engine.execute_send(task, slave)?,
                Decision::WakeAt(t) if t > engine.clock => {
                    engine.push(t, Event::Wake);
                    break;
                }
                _ => break,
            }
        }

        // Feed housekeeping once per settled batch: the bounded-memory
        // streamed feed finalizes completed records and recycles their
        // slots here (a no-op for every other feed).
        engine.feed.maintain(engine.ws);
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::bag_of_tasks;
    use crate::trace::validate;

    /// Sends every pending task to slave 0 as soon as possible.
    struct AllToFirst;

    impl OnlineScheduler for AllToFirst {
        fn name(&self) -> String {
            "all-to-first".into()
        }
        fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            if view.link_idle() {
                if let Some(&t) = view.pending_tasks().first() {
                    return Decision::Send {
                        task: t,
                        slave: SlaveId(0),
                    };
                }
            }
            Decision::Idle
        }
    }

    /// Never does anything.
    struct Lazy;

    impl OnlineScheduler for Lazy {
        fn name(&self) -> String {
            "lazy".into()
        }
        fn on_event(&mut self, _v: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            Decision::Idle
        }
    }

    fn platform() -> Platform {
        Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0])
    }

    #[test]
    fn zero_tasks_complete_immediately() {
        let pf = platform();
        let trace = simulate(&pf, &[], &SimConfig::default(), &mut Lazy).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.makespan(), 0.0);
    }

    #[test]
    fn single_task_timing() {
        let pf = platform();
        let trace = simulate(
            &pf,
            &bag_of_tasks(1),
            &SimConfig::default(),
            &mut AllToFirst,
        )
        .unwrap();
        let r = trace.record(TaskId(0));
        assert_eq!(r.send_start, Time::ZERO);
        assert_eq!(r.send_end, Time::new(1.0));
        assert_eq!(r.compute_start, Time::new(1.0));
        assert_eq!(r.compute_end, Time::new(4.0));
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn pipeline_on_one_slave() {
        // Three tasks to P1: sends at 0,1,2; computes at 1-4, 4-7, 7-10.
        let pf = platform();
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut AllToFirst,
        )
        .unwrap();
        assert!((trace.makespan() - 10.0).abs() < 1e-12);
        assert!(validate(&trace, &pf).is_empty());
        let r2 = trace.record(TaskId(2));
        assert_eq!(r2.send_start, Time::new(2.0));
        assert_eq!(r2.compute_start, Time::new(7.0));
    }

    #[test]
    fn respects_release_times() {
        let pf = platform();
        let tasks = [TaskArrival::at(5.0)];
        let trace = simulate(&pf, &tasks, &SimConfig::default(), &mut AllToFirst).unwrap();
        assert_eq!(trace.record(TaskId(0)).send_start, Time::new(5.0));
        assert!((trace.makespan() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn perturbed_sizes_are_billed() {
        let pf = platform();
        let tasks = [TaskArrival {
            release: Time::ZERO,
            size_c: 2.0,
            size_p: 0.5,
        }];
        let trace = simulate(&pf, &tasks, &SimConfig::default(), &mut AllToFirst).unwrap();
        let r = trace.record(TaskId(0));
        assert_eq!(r.send_end, Time::new(2.0)); // 1.0 · 2.0
        assert_eq!(r.compute_end, Time::new(3.5)); // + 3.0 · 0.5
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn lazy_scheduler_stalls() {
        let pf = platform();
        let err = simulate(&pf, &bag_of_tasks(2), &SimConfig::default(), &mut Lazy).unwrap_err();
        assert!(matches!(
            err,
            SimError::Stalled {
                completed: 0,
                total: 2,
                ..
            }
        ));
    }

    #[test]
    fn invalid_send_rejected() {
        struct SendUnreleased;
        impl OnlineScheduler for SendUnreleased {
            fn name(&self) -> String {
                "bad".into()
            }
            fn on_event(&mut self, _v: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                Decision::Send {
                    task: TaskId(1),
                    slave: SlaveId(0),
                }
            }
        }
        let pf = platform();
        // Task 1 releases at t=10; scheduler tries to send it at t=0.
        let tasks = [TaskArrival::at(0.0), TaskArrival::at(10.0)];
        let err = simulate(&pf, &tasks, &SimConfig::default(), &mut SendUnreleased).unwrap_err();
        assert!(matches!(err, SimError::InvalidDecision { .. }));
    }

    #[test]
    fn unknown_task_send_errors_not_panics() {
        // A task id that was never part of the instance must produce the
        // same InvalidDecision as an unreleased one — the phase slot map
        // bounds-checks before indexing.
        struct SendGhost;
        impl OnlineScheduler for SendGhost {
            fn name(&self) -> String {
                "ghost".into()
            }
            fn on_event(&mut self, _v: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                Decision::Send {
                    task: TaskId(usize::MAX),
                    slave: SlaveId(0),
                }
            }
        }
        let pf = platform();
        let err =
            simulate(&pf, &bag_of_tasks(1), &SimConfig::default(), &mut SendGhost).unwrap_err();
        match err {
            SimError::InvalidDecision { reason, .. } => {
                assert!(reason.contains("not pending"), "{reason}");
            }
            other => panic!("expected InvalidDecision, got {other:?}"),
        }
    }

    #[test]
    fn already_assigned_task_send_errors() {
        // Sending the same task twice: the second send must be rejected.
        struct SendTwice {
            sent: usize,
        }
        impl OnlineScheduler for SendTwice {
            fn name(&self) -> String {
                "send-twice".into()
            }
            fn on_event(&mut self, _v: &SimView<'_>, e: SchedulerEvent) -> Decision {
                if matches!(
                    e,
                    SchedulerEvent::Released(_) | SchedulerEvent::SendCompleted(..)
                ) && self.sent < 2
                {
                    self.sent += 1;
                    return Decision::Send {
                        task: TaskId(0),
                        slave: SlaveId(0),
                    };
                }
                Decision::Idle
            }
        }
        let pf = platform();
        let err = simulate(
            &pf,
            &bag_of_tasks(1),
            &SimConfig::default(),
            &mut SendTwice { sent: 0 },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidDecision { .. }), "{err:?}");
    }

    #[test]
    fn wake_at_is_honored() {
        /// Waits until t=3 before sending the single task.
        struct Sleeper {
            sent: bool,
        }
        impl OnlineScheduler for Sleeper {
            fn name(&self) -> String {
                "sleeper".into()
            }
            fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                if self.sent {
                    return Decision::Idle;
                }
                if view.now() < Time::new(3.0) {
                    return Decision::WakeAt(Time::new(3.0));
                }
                self.sent = true;
                Decision::Send {
                    task: TaskId(0),
                    slave: SlaveId(0),
                }
            }
        }
        let pf = platform();
        let trace = simulate(
            &pf,
            &bag_of_tasks(1),
            &SimConfig::default(),
            &mut Sleeper { sent: false },
        )
        .unwrap();
        assert_eq!(trace.record(TaskId(0)).send_start, Time::new(3.0));
    }

    #[test]
    fn ready_estimate_resyncs_on_completion() {
        // One slow (perturbed) task followed by a nominal one: the estimate
        // is wrong while the first computes, and re-anchors at completion.
        struct Probe {
            estimates: Vec<(f64, f64)>,
        }
        impl OnlineScheduler for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn on_event(&mut self, view: &SimView<'_>, e: SchedulerEvent) -> Decision {
                self.estimates.push((
                    view.now().as_f64(),
                    view.slave(SlaveId(0)).ready_estimate.as_f64(),
                ));
                if matches!(e, SchedulerEvent::Released(_)) {
                    if let Some(&t) = view.pending_tasks().first() {
                        if view.link_idle() {
                            return Decision::Send {
                                task: t,
                                slave: SlaveId(0),
                            };
                        }
                    }
                }
                Decision::Idle
            }
        }
        let pf = Platform::from_vectors(&[1.0], &[3.0]);
        let tasks = [
            TaskArrival {
                release: Time::ZERO,
                size_c: 1.0,
                size_p: 2.0, // actually takes 6s, nominal 3s
            },
            TaskArrival::at(20.0),
        ];
        let mut probe = Probe { estimates: vec![] };
        let trace = simulate(&pf, &tasks, &SimConfig::default(), &mut probe).unwrap();
        // First task: send 0-1, compute 1-7 (actual). Nominal estimate said 4.
        assert_eq!(trace.record(TaskId(0)).compute_end, Time::new(7.0));
        // Second task sent at 20, done at 24.
        assert_eq!(trace.record(TaskId(1)).compute_end, Time::new(24.0));
    }

    #[test]
    fn step_budget_enforced() {
        struct WakeLoop;
        impl OnlineScheduler for WakeLoop {
            fn name(&self) -> String {
                "wake-loop".into()
            }
            fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                Decision::WakeAt(view.now() + 0.001)
            }
        }
        let pf = platform();
        let cfg = SimConfig {
            max_steps: 1000,
            ..SimConfig::default()
        };
        let err = simulate(&pf, &bag_of_tasks(1), &cfg, &mut WakeLoop).unwrap_err();
        assert!(matches!(err, SimError::BudgetExhausted { .. }));
    }

    fn timeline(events: Vec<(f64, usize, PlatformEventKind)>) -> Timeline {
        Timeline::new(
            events
                .into_iter()
                .map(|(t, j, kind)| crate::events::PlatformEvent {
                    time: Time::new(t),
                    slave: SlaveId(j),
                    kind,
                })
                .collect(),
        )
    }

    #[test]
    fn empty_timeline_is_bitwise_identical() {
        let pf = platform();
        let tasks = bag_of_tasks(5);
        let a = simulate(&pf, &tasks, &SimConfig::default(), &mut AllToFirst).unwrap();
        let b = simulate_with_events(
            &pf,
            &tasks,
            &SimConfig::default(),
            &Timeline::EMPTY,
            &mut AllToFirst,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical() {
        // A warm workspace (even one warmed on a different platform shape)
        // must not change any result.
        let pf = platform();
        let tasks = bag_of_tasks(7);
        let fresh = simulate(&pf, &tasks, &SimConfig::default(), &mut AllToFirst).unwrap();
        let mut ws = SimWorkspace::new();
        let other_pf = Platform::from_vectors(&[0.5, 0.5, 0.5], &[1.0, 2.0, 3.0]);
        simulate_in(
            &mut ws,
            &other_pf,
            &bag_of_tasks(20),
            &SimConfig::default(),
            &mut AllToFirst,
        )
        .unwrap();
        let reused =
            simulate_in(&mut ws, &pf, &tasks, &SimConfig::default(), &mut AllToFirst).unwrap();
        assert_eq!(fresh, reused);
    }

    #[test]
    fn workspace_survives_error_and_reruns() {
        // An errored run must not poison the workspace for the next one.
        let pf = platform();
        let mut ws = SimWorkspace::new();
        let err = simulate_in(
            &mut ws,
            &pf,
            &bag_of_tasks(2),
            &SimConfig::default(),
            &mut Lazy,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Stalled { .. }));
        let trace = simulate_in(
            &mut ws,
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut AllToFirst,
        )
        .unwrap();
        assert!((trace.makespan() - 10.0).abs() < 1e-12);
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn failure_loses_work_and_rereleases_tasks() {
        // 3 tasks to P1 (c=1, p=3): computes 1-4, 4-7, 7-10. P1 fails at
        // t=5 (T1 computing, T2 queued are lost) and recovers at t=7.5.
        // AllToFirst keeps gambling on P1; the send in flight at recovery
        // time is delivered. Expected completion walk-through:
        //   5-6 resend T1 (lost on arrival), 6-7 resend T2 (lost),
        //   7-8 resend T1 (P1 recovers at 7.5 -> delivered), computes 8-11,
        //   8-9 resend T2, computes 11-14.
        let pf = platform();
        let tl = timeline(vec![
            (5.0, 0, PlatformEventKind::Fail),
            (7.5, 0, PlatformEventKind::Recover),
        ]);
        let trace = simulate_with_events(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &tl,
            &mut AllToFirst,
        )
        .unwrap();
        assert!(validate(&trace, &pf).is_empty());
        assert_eq!(trace.record(TaskId(0)).compute_end, Time::new(4.0));
        let r1 = trace.record(TaskId(1));
        assert_eq!(r1.send_start, Time::new(7.0));
        assert_eq!(r1.compute_start, Time::new(8.0));
        assert_eq!(r1.compute_end, Time::new(11.0));
        let r2 = trace.record(TaskId(2));
        assert_eq!(r2.send_start, Time::new(8.0));
        assert_eq!(r2.compute_end, Time::new(14.0));
    }

    #[test]
    fn failure_aborts_in_flight_send_and_frees_port() {
        // P1 fails at t=0.5 while T0 is in flight: the port frees at 0.5
        // and the re-send starts immediately.
        let pf = platform();
        let tl = timeline(vec![
            (0.5, 0, PlatformEventKind::Fail),
            (2.0, 0, PlatformEventKind::Recover),
        ]);
        let trace = simulate_with_events(
            &pf,
            &bag_of_tasks(1),
            &SimConfig::default(),
            &tl,
            &mut AllToFirst,
        )
        .unwrap();
        let r = trace.record(TaskId(0));
        // Re-sends: 0.5-1.5 (lost on arrival), 1.5-2.5 (P1 back at 2.0).
        assert_eq!(r.send_start, Time::new(1.5));
        assert_eq!(r.compute_end, Time::new(5.5));
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn speed_drift_rebills_future_computations_only() {
        // P1 slows down 2x at t=2: T0 (computing since t=1) keeps its old
        // rate and ends at 4; T1 starts at 4 and takes 6 seconds.
        let pf = platform();
        let tl = timeline(vec![(2.0, 0, PlatformEventKind::SetSpeedFactor(2.0))]);
        let trace = simulate_with_events(
            &pf,
            &bag_of_tasks(2),
            &SimConfig::default(),
            &tl,
            &mut AllToFirst,
        )
        .unwrap();
        assert_eq!(trace.record(TaskId(0)).compute_end, Time::new(4.0));
        let r1 = trace.record(TaskId(1));
        assert_eq!(r1.compute_end, Time::new(10.0));
        assert_eq!(r1.size_p, 2.0, "drift folds into the billed multiplier");
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn failure_events_are_observable() {
        struct Watcher {
            seen: Vec<&'static str>,
        }
        impl OnlineScheduler for Watcher {
            fn name(&self) -> String {
                "watcher".into()
            }
            fn on_event(&mut self, view: &SimView<'_>, e: SchedulerEvent) -> Decision {
                match e {
                    SchedulerEvent::SlaveFailed(j) => {
                        assert!(!view.slave_available(j));
                        self.seen.push("failed");
                    }
                    SchedulerEvent::SlaveRecovered(j) => {
                        assert!(view.slave_available(j));
                        self.seen.push("recovered");
                    }
                    _ => {}
                }
                // Only dispatch to available slaves.
                if view.link_idle() {
                    if let Some(&t) = view.pending_tasks().first() {
                        if let Some(slave) = view.available_slaves().next() {
                            return Decision::Send { task: t, slave };
                        }
                    }
                }
                Decision::Idle
            }
        }
        let pf = platform();
        let tl = timeline(vec![
            (0.5, 0, PlatformEventKind::Fail),
            (2.0, 0, PlatformEventKind::Recover),
        ]);
        let mut w = Watcher { seen: vec![] };
        let trace = simulate_with_events(&pf, &bag_of_tasks(2), &SimConfig::default(), &tl, &mut w)
            .unwrap();
        assert_eq!(w.seen, vec!["failed", "recovered"]);
        // The watcher fell back to P2 (the only available slave) after the
        // failure; everything still validates.
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn horizon_hint_visible() {
        struct CheckHorizon;
        impl OnlineScheduler for CheckHorizon {
            fn name(&self) -> String {
                "check-horizon".into()
            }
            fn init(&mut self, view: &SimView<'_>) {
                assert_eq!(view.horizon(), Some(4));
            }
            fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                if view.link_idle() {
                    if let Some(&t) = view.pending_tasks().first() {
                        return Decision::Send {
                            task: t,
                            slave: SlaveId(0),
                        };
                    }
                }
                Decision::Idle
            }
        }
        let pf = platform();
        let trace = simulate(
            &pf,
            &bag_of_tasks(4),
            &SimConfig::with_horizon(4),
            &mut CheckHorizon,
        )
        .unwrap();
        assert_eq!(trace.len(), 4);
    }
}
