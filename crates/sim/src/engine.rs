//! The discrete-event engine.
//!
//! [`simulate`] runs one on-line scheduler over one task instance on one
//! platform and returns the full [`Trace`]. The engine owns the two scarce
//! resources of the model and enforces them *by construction*:
//!
//! * the master's **one port** — a single [`LinkState`]; a send can only
//!   start when the port is idle, and occupies it for `c_j · size_c` seconds;
//! * each slave's **serial execution** — a slave computes the tasks it has
//!   received one at a time, FIFO, each for `p_j · size_p` seconds.
//!
//! Determinism: events are processed in `(time, insertion sequence)` order
//! and all simultaneous events are applied and delivered to the scheduler
//! before any decision is taken, so a deterministic scheduler always sees
//! the same history — the adversary games rely on this to replay prefixes.
//!
//! [`simulate_with_events`] additionally consumes a platform-event
//! [`Timeline`] (slave failures, recoveries, link/speed drift — see
//! [`crate::events`]): timeline events enter the same heap after the task
//! releases, so the determinism contract extends unchanged to dynamic
//! platforms, and an empty timeline is bit-for-bit the static engine.

use crate::events::{PlatformEventKind, Timeline};
use crate::platform::{Platform, SlaveId};
use crate::scheduler::{Decision, OnlineScheduler, SchedulerEvent};
use crate::task::{TaskArrival, TaskId};
use crate::time::Time;
use crate::trace::{TaskRecord, Trace};
use crate::view::{SimView, SlaveView};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// If `Some(n)`, schedulers are told the instance will contain `n` tasks
    /// in total (the knowledge the paper grants SLJF/SLJFWC). `None` for the
    /// pure on-line setting.
    pub horizon_hint: Option<usize>,
    /// Hard cap on processed events + scheduler polls, to turn scheduler
    /// bugs (e.g. busy wake loops) into errors instead of hangs.
    pub max_steps: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon_hint: None,
            max_steps: 10_000_000,
        }
    }
}

impl SimConfig {
    /// Config that reveals the total task count to the scheduler.
    pub fn with_horizon(n: usize) -> Self {
        SimConfig {
            horizon_hint: Some(n),
            ..SimConfig::default()
        }
    }
}

/// Why a simulation could not complete.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// No events remain, the port is idle, tasks are unfinished, and the
    /// scheduler keeps answering [`Decision::Idle`].
    Stalled {
        /// Time at which the simulation stalled.
        at: Time,
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks in the instance.
        total: usize,
    },
    /// The scheduler returned a decision that violates the model.
    InvalidDecision {
        /// Time of the offending decision.
        at: Time,
        /// Human-readable explanation.
        reason: String,
    },
    /// `max_steps` exhausted (runaway wake loop or gigantic instance).
    BudgetExhausted {
        /// The configured step budget.
        max_steps: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                at,
                completed,
                total,
            } => write!(
                f,
                "simulation stalled at {at}: {completed}/{total} tasks completed and the scheduler idles"
            ),
            SimError::InvalidDecision { at, reason } => {
                write!(f, "invalid scheduler decision at {at}: {reason}")
            }
            SimError::BudgetExhausted { max_steps } => {
                write!(f, "step budget of {max_steps} exhausted")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Internal event kinds. `Platform(i)` indexes into the run's [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    Release(TaskId),
    SendComplete(TaskId, SlaveId),
    ComputeComplete(TaskId, SlaveId),
    Platform(usize),
    Wake,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct HeapItem {
    time: Time,
    seq: u64,
    event: Event,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One task outstanding at (or in flight towards) a slave.
#[derive(Clone, Copy, Debug)]
struct OutTask {
    id: TaskId,
    /// Predicted (or, once observed, actual) time the slave has the task.
    avail: f64,
}

#[derive(Clone, Debug, Default)]
struct SlaveRt {
    /// Sent-and-not-completed tasks, in send order. Index 0 is the one
    /// currently computing when `cur_pred_end` is `Some`.
    outstanding: VecDeque<OutTask>,
    /// Received tasks waiting to compute (subset of `outstanding`).
    queue: VecDeque<TaskId>,
    /// Task currently computing, if any.
    computing: Option<TaskId>,
    /// Heap sequence of the pending `ComputeComplete` (for cancellation on
    /// failure); meaningful only while `computing` is `Some`.
    compute_seq: u64,
    /// Predicted end of the current computation (nominal size).
    cur_pred_end: f64,
    /// `true` while the slave is failed (scenario timelines only).
    down: bool,
    completed: usize,
}

#[derive(Clone, Copy, Debug, Default)]
struct PartialRecord {
    release: f64,
    send_start: f64,
    send_end: f64,
    compute_start: f64,
    compute_end: f64,
    /// Billed multipliers of the successful attempt: the task's actual size
    /// times the drift factor in force when the phase started.
    billed_c: f64,
    billed_p: f64,
    slave: usize,
    assigned: bool,
    done: bool,
}

struct Engine<'a> {
    platform: &'a Platform,
    tasks: &'a [TaskArrival],
    config: &'a SimConfig,
    timeline: &'a Timeline,
    clock: Time,
    heap: BinaryHeap<Reverse<HeapItem>>,
    seq: u64,
    link_busy_until: Time,
    slaves: Vec<SlaveRt>,
    /// Current drift factors; effective `c_j`/`p_j` is nominal × factor.
    link_factor: Vec<f64>,
    speed_factor: Vec<f64>,
    /// The send currently occupying the port, with its heap sequence.
    in_flight: Option<(TaskId, SlaveId, u64)>,
    /// Heap sequences of events voided by a failure (aborted transfers,
    /// computations of lost tasks); popped items with these seqs are skipped.
    cancelled: HashSet<u64>,
    pending: Vec<TaskId>,
    releases: Vec<Time>,
    records: Vec<PartialRecord>,
    released_count: usize,
    completed_count: usize,
    steps: usize,
}

impl<'a> Engine<'a> {
    fn new(
        platform: &'a Platform,
        tasks: &'a [TaskArrival],
        config: &'a SimConfig,
        timeline: &'a Timeline,
    ) -> Self {
        let mut engine = Engine {
            platform,
            tasks,
            config,
            timeline,
            clock: Time::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            link_busy_until: Time::ZERO,
            slaves: vec![SlaveRt::default(); platform.num_slaves()],
            link_factor: vec![1.0; platform.num_slaves()],
            speed_factor: vec![1.0; platform.num_slaves()],
            in_flight: None,
            cancelled: HashSet::new(),
            pending: Vec::new(),
            releases: vec![Time::ZERO; tasks.len()],
            records: vec![PartialRecord::default(); tasks.len()],
            released_count: 0,
            completed_count: 0,
            steps: 0,
        };
        for (i, t) in tasks.iter().enumerate() {
            engine.push(t.release, Event::Release(TaskId(i)));
        }
        // Timeline events queue after every release so that task-release
        // sequence numbers — and thus every static run — stay unchanged.
        for (i, e) in timeline.events().iter().enumerate() {
            engine.push(e.time, Event::Platform(i));
        }
        engine
    }

    fn push(&mut self, time: Time, event: Event) -> u64 {
        let seq = self.seq;
        self.heap.push(Reverse(HeapItem { time, seq, event }));
        self.seq += 1;
        seq
    }

    /// Returns a lost task to the master's pending queue and clears the
    /// partial record of its failed attempt (its release time survives).
    fn lose_task(&mut self, t: TaskId) {
        let r = &mut self.records[t.0];
        r.send_start = 0.0;
        r.send_end = 0.0;
        r.compute_start = 0.0;
        r.slave = 0;
        r.assigned = false;
        self.pending.push(t);
    }

    /// Nominal-size ready estimate for slave `j`, anchored at `now`.
    fn ready_estimate(&self, j: usize) -> f64 {
        let now = self.clock.as_f64();
        let p = self.platform.p(SlaveId(j));
        let rt = &self.slaves[j];
        let mut t = now;
        for (k, ot) in rt.outstanding.iter().enumerate() {
            if k == 0 && rt.computing.is_some() {
                // Master's best guess for the current task: its predicted
                // end, but never before "now".
                t = rt.cur_pred_end.max(now);
            } else {
                t = t.max(ot.avail) + p;
            }
        }
        t
    }

    fn slave_views(&self) -> Vec<SlaveView> {
        (0..self.slaves.len())
            .map(|j| SlaveView {
                outstanding: self.slaves[j].outstanding.len(),
                ready_estimate: Time::new(self.ready_estimate(j)),
                completed: self.slaves[j].completed,
                available: !self.slaves[j].down,
            })
            .collect()
    }

    fn view<'b>(&'b self, slaves: &'b [SlaveView]) -> SimView<'b> {
        SimView {
            now: self.clock,
            platform: self.platform,
            link_busy_until: self.link_busy_until,
            slaves,
            pending: &self.pending,
            releases: &self.releases,
            horizon: self.config.horizon_hint,
            released_count: self.released_count,
            completed_count: self.completed_count,
        }
    }

    fn apply(&mut self, event: Event) -> Option<SchedulerEvent> {
        let now = self.clock.as_f64();
        match event {
            Event::Release(t) => {
                self.releases[t.0] = self.tasks[t.0].release;
                self.records[t.0].release = self.tasks[t.0].release.as_f64();
                self.pending.push(t);
                self.released_count += 1;
                Some(SchedulerEvent::Released(t))
            }
            Event::SendComplete(t, j) => {
                self.in_flight = None;
                let rt = &mut self.slaves[j.0];
                if rt.down {
                    // Arrived at a failed slave: the transfer is wasted and
                    // the task returns to the pending queue.
                    let pos = rt
                        .outstanding
                        .iter()
                        .position(|o| o.id == t)
                        .expect("in-flight task must be outstanding");
                    rt.outstanding.remove(pos);
                    self.lose_task(t);
                    return Some(SchedulerEvent::SendCompleted(t, j));
                }
                self.records[t.0].send_end = now;
                // The slave now actually has the task.
                if let Some(ot) = rt.outstanding.iter_mut().find(|o| o.id == t) {
                    ot.avail = now;
                }
                if rt.computing.is_none() {
                    self.start_compute(t, j);
                } else {
                    rt.queue.push_back(t);
                }
                Some(SchedulerEvent::SendCompleted(t, j))
            }
            Event::ComputeComplete(t, j) => {
                self.records[t.0].compute_end = now;
                self.records[t.0].done = true;
                self.completed_count += 1;
                let rt = &mut self.slaves[j.0];
                debug_assert_eq!(rt.computing, Some(t));
                rt.computing = None;
                rt.completed += 1;
                let pos = rt
                    .outstanding
                    .iter()
                    .position(|o| o.id == t)
                    .expect("completed task must be outstanding");
                rt.outstanding.remove(pos);
                if let Some(next) = rt.queue.pop_front() {
                    self.start_compute(next, j);
                }
                Some(SchedulerEvent::ComputeCompleted(t, j))
            }
            Event::Platform(i) => self.apply_platform_event(i),
            Event::Wake => Some(SchedulerEvent::Wake),
        }
    }

    fn apply_platform_event(&mut self, i: usize) -> Option<SchedulerEvent> {
        let e = self.timeline.events()[i];
        let j = e.slave;
        if j.0 >= self.platform.num_slaves() {
            return None; // scenario written for a larger platform: ignore
        }
        match e.kind {
            PlatformEventKind::Fail => {
                if self.slaves[j.0].down {
                    return None;
                }
                // Abort a transfer in flight towards the failing slave: the
                // port frees immediately and its completion event is voided.
                if let Some((_, target, seq)) = self.in_flight {
                    if target == j {
                        self.cancelled.insert(seq);
                        self.link_busy_until = self.clock;
                        self.in_flight = None;
                    }
                }
                let (cancel_seq, lost) = {
                    let rt = &mut self.slaves[j.0];
                    rt.down = true;
                    let cancel = rt.computing.take().map(|_| rt.compute_seq);
                    rt.queue.clear();
                    let lost: Vec<TaskId> = rt.outstanding.drain(..).map(|o| o.id).collect();
                    (cancel, lost)
                };
                if let Some(seq) = cancel_seq {
                    self.cancelled.insert(seq);
                }
                // Lost tasks re-enter `pending` in their send order, so the
                // re-release order is deterministic and observable.
                for t in lost {
                    self.lose_task(t);
                }
                Some(SchedulerEvent::SlaveFailed(j))
            }
            PlatformEventKind::Recover => {
                if !self.slaves[j.0].down {
                    return None;
                }
                // The slave restarts empty. A transfer still in flight (the
                // master gambled on the recovery) stays in `outstanding` and
                // is delivered normally at its send-complete.
                self.slaves[j.0].down = false;
                Some(SchedulerEvent::SlaveRecovered(j))
            }
            PlatformEventKind::SetLinkFactor(f) => {
                self.link_factor[j.0] = f;
                None // drift is invisible: schedulers stay speed-oblivious
            }
            PlatformEventKind::SetSpeedFactor(f) => {
                self.speed_factor[j.0] = f;
                None
            }
        }
    }

    fn start_compute(&mut self, t: TaskId, j: SlaveId) {
        let now = self.clock.as_f64();
        // Billed at the *effective* speed in force when the computation
        // starts; the nominal estimate below is what schedulers see. With
        // a factor of exactly 1.0 the arithmetic is bit-identical to the
        // static engine.
        let billed_p = self.speed_factor[j.0] * self.tasks[t.0].size_p;
        let actual = self.platform.p(j) * billed_p;
        self.records[t.0].compute_start = now;
        self.records[t.0].billed_p = billed_p;
        let seq = self.push(Time::new(now + actual), Event::ComputeComplete(t, j));
        let rt = &mut self.slaves[j.0];
        rt.computing = Some(t);
        rt.compute_seq = seq;
        rt.cur_pred_end = now + self.platform.p(j); // nominal estimate
                                                    // The head of `outstanding` must be the task that starts computing:
                                                    // sends are FIFO per slave and computes are FIFO, so this holds.
        debug_assert_eq!(rt.outstanding.front().map(|o| o.id), Some(t));
    }

    fn execute_send(&mut self, t: TaskId, j: SlaveId) -> Result<(), SimError> {
        let now = self.clock;
        if self.link_busy_until > now {
            return Err(SimError::InvalidDecision {
                at: now,
                reason: format!(
                    "send of {t} while the port is busy until {}",
                    self.link_busy_until
                ),
            });
        }
        let Some(pos) = self.pending.iter().position(|&x| x == t) else {
            return Err(SimError::InvalidDecision {
                at: now,
                reason: format!(
                    "send of {t} which is not pending (unreleased, or already assigned)"
                ),
            });
        };
        if j.0 >= self.platform.num_slaves() {
            return Err(SimError::InvalidDecision {
                at: now,
                reason: format!("send of {t} to unknown slave index {}", j.0),
            });
        }
        self.pending.remove(pos);
        let billed_c = self.link_factor[j.0] * self.tasks[t.0].size_c;
        let actual_c = self.platform.c(j) * billed_c;
        let nominal_c = self.platform.c(j);
        self.records[t.0].send_start = now.as_f64();
        self.records[t.0].billed_c = billed_c;
        self.records[t.0].slave = j.0;
        self.records[t.0].assigned = true;
        self.link_busy_until = now + actual_c;
        self.slaves[j.0].outstanding.push_back(OutTask {
            id: t,
            avail: now.as_f64() + nominal_c,
        });
        let seq = self.push(self.link_busy_until, Event::SendComplete(t, j));
        self.in_flight = Some((t, j, seq));
        Ok(())
    }

    fn step_budget(&mut self) -> Result<(), SimError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            Err(SimError::BudgetExhausted {
                max_steps: self.config.max_steps,
            })
        } else {
            Ok(())
        }
    }

    fn finish(self) -> Trace {
        let records = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                debug_assert!(r.done);
                TaskRecord {
                    task: TaskId(i),
                    release: Time::new(r.release),
                    slave: SlaveId(r.slave),
                    send_start: Time::new(r.send_start),
                    send_end: Time::new(r.send_end),
                    compute_start: Time::new(r.compute_start),
                    compute_end: Time::new(r.compute_end),
                    size_c: r.billed_c,
                    size_p: r.billed_p,
                }
            })
            .collect();
        Trace::new(records)
    }
}

/// Runs `scheduler` on `tasks` over `platform` and returns the trace.
///
/// The scheduler sees nominal task sizes; the engine bills actual
/// (possibly perturbed) ones. Fails if the scheduler stalls, produces an
/// invalid decision, or exhausts the step budget.
pub fn simulate(
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<Trace, SimError> {
    simulate_with_events(platform, tasks, config, &Timeline::EMPTY, scheduler)
}

/// Like [`simulate`], over a *dynamic* platform: `timeline` scripts slave
/// failures, recoveries, and link/speed drift (see [`crate::events`]).
///
/// Tasks on a failing slave are lost and re-enter the pending queue; sends
/// to a down slave are permitted (the master may be fault-oblivious or
/// gamble on a recovery) but are lost on arrival while the slave is down.
/// With an empty timeline this is exactly [`simulate`], bit for bit.
pub fn simulate_with_events(
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &SimConfig,
    timeline: &Timeline,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<Trace, SimError> {
    let mut engine = Engine::new(platform, tasks, config, timeline);

    {
        let slaves = engine.slave_views();
        let view = engine.view(&slaves);
        scheduler.init(&view);
    }

    while engine.completed_count < tasks.len() {
        engine.step_budget()?;

        let Some(&Reverse(first)) = engine.heap.peek() else {
            // Nothing scheduled: give the scheduler one last chance to act.
            let decision = {
                let slaves = engine.slave_views();
                let view = engine.view(&slaves);
                scheduler.on_event(&view, SchedulerEvent::PortIdle)
            };
            match decision {
                Decision::Send { task, slave } => {
                    engine.execute_send(task, slave)?;
                    continue;
                }
                Decision::WakeAt(t) if t > engine.clock => {
                    engine.push(t, Event::Wake);
                    continue;
                }
                _ => {
                    return Err(SimError::Stalled {
                        at: engine.clock,
                        completed: engine.completed_count,
                        total: tasks.len(),
                    })
                }
            }
        };

        // Pop and apply the whole batch of simultaneous events first, so the
        // scheduler always decides on a fully settled state.
        engine.clock = first.time;
        let mut notifications = Vec::new();
        while let Some(&Reverse(item)) = engine.heap.peek() {
            if item.time != engine.clock {
                break;
            }
            engine.heap.pop();
            if engine.cancelled.remove(&item.seq) {
                continue; // voided by a failure before it fired
            }
            engine.step_budget()?;
            if let Some(n) = engine.apply(item.event) {
                notifications.push(n);
            }
        }

        // Deliver notifications; each may carry a decision.
        for n in notifications {
            let decision = {
                let slaves = engine.slave_views();
                let view = engine.view(&slaves);
                scheduler.on_event(&view, n)
            };
            match decision {
                Decision::Send { task, slave } => engine.execute_send(task, slave)?,
                Decision::WakeAt(t) if t > engine.clock => {
                    engine.push(t, Event::Wake);
                }
                _ => {}
            }
        }

        // Poll while the port is idle and the scheduler keeps acting.
        loop {
            engine.step_budget()?;
            if engine.link_busy_until > engine.clock || engine.pending.is_empty() {
                break;
            }
            let decision = {
                let slaves = engine.slave_views();
                let view = engine.view(&slaves);
                scheduler.on_event(&view, SchedulerEvent::PortIdle)
            };
            match decision {
                Decision::Send { task, slave } => engine.execute_send(task, slave)?,
                Decision::WakeAt(t) if t > engine.clock => {
                    engine.push(t, Event::Wake);
                    break;
                }
                _ => break,
            }
        }
    }

    Ok(engine.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::bag_of_tasks;
    use crate::trace::validate;

    /// Sends every pending task to slave 0 as soon as possible.
    struct AllToFirst;

    impl OnlineScheduler for AllToFirst {
        fn name(&self) -> String {
            "all-to-first".into()
        }
        fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            if view.link_idle() {
                if let Some(&t) = view.pending_tasks().first() {
                    return Decision::Send {
                        task: t,
                        slave: SlaveId(0),
                    };
                }
            }
            Decision::Idle
        }
    }

    /// Never does anything.
    struct Lazy;

    impl OnlineScheduler for Lazy {
        fn name(&self) -> String {
            "lazy".into()
        }
        fn on_event(&mut self, _v: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            Decision::Idle
        }
    }

    fn platform() -> Platform {
        Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0])
    }

    #[test]
    fn zero_tasks_complete_immediately() {
        let pf = platform();
        let trace = simulate(&pf, &[], &SimConfig::default(), &mut Lazy).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.makespan(), 0.0);
    }

    #[test]
    fn single_task_timing() {
        let pf = platform();
        let trace = simulate(
            &pf,
            &bag_of_tasks(1),
            &SimConfig::default(),
            &mut AllToFirst,
        )
        .unwrap();
        let r = trace.record(TaskId(0));
        assert_eq!(r.send_start, Time::ZERO);
        assert_eq!(r.send_end, Time::new(1.0));
        assert_eq!(r.compute_start, Time::new(1.0));
        assert_eq!(r.compute_end, Time::new(4.0));
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn pipeline_on_one_slave() {
        // Three tasks to P1: sends at 0,1,2; computes at 1-4, 4-7, 7-10.
        let pf = platform();
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut AllToFirst,
        )
        .unwrap();
        assert!((trace.makespan() - 10.0).abs() < 1e-12);
        assert!(validate(&trace, &pf).is_empty());
        let r2 = trace.record(TaskId(2));
        assert_eq!(r2.send_start, Time::new(2.0));
        assert_eq!(r2.compute_start, Time::new(7.0));
    }

    #[test]
    fn respects_release_times() {
        let pf = platform();
        let tasks = [TaskArrival::at(5.0)];
        let trace = simulate(&pf, &tasks, &SimConfig::default(), &mut AllToFirst).unwrap();
        assert_eq!(trace.record(TaskId(0)).send_start, Time::new(5.0));
        assert!((trace.makespan() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn perturbed_sizes_are_billed() {
        let pf = platform();
        let tasks = [TaskArrival {
            release: Time::ZERO,
            size_c: 2.0,
            size_p: 0.5,
        }];
        let trace = simulate(&pf, &tasks, &SimConfig::default(), &mut AllToFirst).unwrap();
        let r = trace.record(TaskId(0));
        assert_eq!(r.send_end, Time::new(2.0)); // 1.0 · 2.0
        assert_eq!(r.compute_end, Time::new(3.5)); // + 3.0 · 0.5
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn lazy_scheduler_stalls() {
        let pf = platform();
        let err = simulate(&pf, &bag_of_tasks(2), &SimConfig::default(), &mut Lazy).unwrap_err();
        assert!(matches!(
            err,
            SimError::Stalled {
                completed: 0,
                total: 2,
                ..
            }
        ));
    }

    #[test]
    fn invalid_send_rejected() {
        struct SendUnreleased;
        impl OnlineScheduler for SendUnreleased {
            fn name(&self) -> String {
                "bad".into()
            }
            fn on_event(&mut self, _v: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                Decision::Send {
                    task: TaskId(1),
                    slave: SlaveId(0),
                }
            }
        }
        let pf = platform();
        // Task 1 releases at t=10; scheduler tries to send it at t=0.
        let tasks = [TaskArrival::at(0.0), TaskArrival::at(10.0)];
        let err = simulate(&pf, &tasks, &SimConfig::default(), &mut SendUnreleased).unwrap_err();
        assert!(matches!(err, SimError::InvalidDecision { .. }));
    }

    #[test]
    fn wake_at_is_honored() {
        /// Waits until t=3 before sending the single task.
        struct Sleeper {
            sent: bool,
        }
        impl OnlineScheduler for Sleeper {
            fn name(&self) -> String {
                "sleeper".into()
            }
            fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                if self.sent {
                    return Decision::Idle;
                }
                if view.now() < Time::new(3.0) {
                    return Decision::WakeAt(Time::new(3.0));
                }
                self.sent = true;
                Decision::Send {
                    task: TaskId(0),
                    slave: SlaveId(0),
                }
            }
        }
        let pf = platform();
        let trace = simulate(
            &pf,
            &bag_of_tasks(1),
            &SimConfig::default(),
            &mut Sleeper { sent: false },
        )
        .unwrap();
        assert_eq!(trace.record(TaskId(0)).send_start, Time::new(3.0));
    }

    #[test]
    fn ready_estimate_resyncs_on_completion() {
        // One slow (perturbed) task followed by a nominal one: the estimate
        // is wrong while the first computes, and re-anchors at completion.
        struct Probe {
            estimates: Vec<(f64, f64)>,
        }
        impl OnlineScheduler for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn on_event(&mut self, view: &SimView<'_>, e: SchedulerEvent) -> Decision {
                self.estimates.push((
                    view.now().as_f64(),
                    view.slave(SlaveId(0)).ready_estimate.as_f64(),
                ));
                if matches!(e, SchedulerEvent::Released(_)) {
                    if let Some(&t) = view.pending_tasks().first() {
                        if view.link_idle() {
                            return Decision::Send {
                                task: t,
                                slave: SlaveId(0),
                            };
                        }
                    }
                }
                Decision::Idle
            }
        }
        let pf = Platform::from_vectors(&[1.0], &[3.0]);
        let tasks = [
            TaskArrival {
                release: Time::ZERO,
                size_c: 1.0,
                size_p: 2.0, // actually takes 6s, nominal 3s
            },
            TaskArrival::at(20.0),
        ];
        let mut probe = Probe { estimates: vec![] };
        let trace = simulate(&pf, &tasks, &SimConfig::default(), &mut probe).unwrap();
        // First task: send 0-1, compute 1-7 (actual). Nominal estimate said 4.
        assert_eq!(trace.record(TaskId(0)).compute_end, Time::new(7.0));
        // Second task sent at 20, done at 24.
        assert_eq!(trace.record(TaskId(1)).compute_end, Time::new(24.0));
    }

    #[test]
    fn step_budget_enforced() {
        struct WakeLoop;
        impl OnlineScheduler for WakeLoop {
            fn name(&self) -> String {
                "wake-loop".into()
            }
            fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                Decision::WakeAt(view.now() + 0.001)
            }
        }
        let pf = platform();
        let cfg = SimConfig {
            max_steps: 1000,
            ..SimConfig::default()
        };
        let err = simulate(&pf, &bag_of_tasks(1), &cfg, &mut WakeLoop).unwrap_err();
        assert!(matches!(err, SimError::BudgetExhausted { .. }));
    }

    fn timeline(events: Vec<(f64, usize, PlatformEventKind)>) -> Timeline {
        Timeline::new(
            events
                .into_iter()
                .map(|(t, j, kind)| crate::events::PlatformEvent {
                    time: Time::new(t),
                    slave: SlaveId(j),
                    kind,
                })
                .collect(),
        )
    }

    #[test]
    fn empty_timeline_is_bitwise_identical() {
        let pf = platform();
        let tasks = bag_of_tasks(5);
        let a = simulate(&pf, &tasks, &SimConfig::default(), &mut AllToFirst).unwrap();
        let b = simulate_with_events(
            &pf,
            &tasks,
            &SimConfig::default(),
            &Timeline::EMPTY,
            &mut AllToFirst,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn failure_loses_work_and_rereleases_tasks() {
        // 3 tasks to P1 (c=1, p=3): computes 1-4, 4-7, 7-10. P1 fails at
        // t=5 (T1 computing, T2 queued are lost) and recovers at t=7.5.
        // AllToFirst keeps gambling on P1; the send in flight at recovery
        // time is delivered. Expected completion walk-through:
        //   5-6 resend T1 (lost on arrival), 6-7 resend T2 (lost),
        //   7-8 resend T1 (P1 recovers at 7.5 -> delivered), computes 8-11,
        //   8-9 resend T2, computes 11-14.
        let pf = platform();
        let tl = timeline(vec![
            (5.0, 0, PlatformEventKind::Fail),
            (7.5, 0, PlatformEventKind::Recover),
        ]);
        let trace = simulate_with_events(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &tl,
            &mut AllToFirst,
        )
        .unwrap();
        assert!(validate(&trace, &pf).is_empty());
        assert_eq!(trace.record(TaskId(0)).compute_end, Time::new(4.0));
        let r1 = trace.record(TaskId(1));
        assert_eq!(r1.send_start, Time::new(7.0));
        assert_eq!(r1.compute_start, Time::new(8.0));
        assert_eq!(r1.compute_end, Time::new(11.0));
        let r2 = trace.record(TaskId(2));
        assert_eq!(r2.send_start, Time::new(8.0));
        assert_eq!(r2.compute_end, Time::new(14.0));
    }

    #[test]
    fn failure_aborts_in_flight_send_and_frees_port() {
        // P1 fails at t=0.5 while T0 is in flight: the port frees at 0.5
        // and the re-send starts immediately.
        let pf = platform();
        let tl = timeline(vec![
            (0.5, 0, PlatformEventKind::Fail),
            (2.0, 0, PlatformEventKind::Recover),
        ]);
        let trace = simulate_with_events(
            &pf,
            &bag_of_tasks(1),
            &SimConfig::default(),
            &tl,
            &mut AllToFirst,
        )
        .unwrap();
        let r = trace.record(TaskId(0));
        // Re-sends: 0.5-1.5 (lost on arrival), 1.5-2.5 (P1 back at 2.0).
        assert_eq!(r.send_start, Time::new(1.5));
        assert_eq!(r.compute_end, Time::new(5.5));
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn speed_drift_rebills_future_computations_only() {
        // P1 slows down 2x at t=2: T0 (computing since t=1) keeps its old
        // rate and ends at 4; T1 starts at 4 and takes 6 seconds.
        let pf = platform();
        let tl = timeline(vec![(2.0, 0, PlatformEventKind::SetSpeedFactor(2.0))]);
        let trace = simulate_with_events(
            &pf,
            &bag_of_tasks(2),
            &SimConfig::default(),
            &tl,
            &mut AllToFirst,
        )
        .unwrap();
        assert_eq!(trace.record(TaskId(0)).compute_end, Time::new(4.0));
        let r1 = trace.record(TaskId(1));
        assert_eq!(r1.compute_end, Time::new(10.0));
        assert_eq!(r1.size_p, 2.0, "drift folds into the billed multiplier");
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn failure_events_are_observable() {
        struct Watcher {
            seen: Vec<&'static str>,
        }
        impl OnlineScheduler for Watcher {
            fn name(&self) -> String {
                "watcher".into()
            }
            fn on_event(&mut self, view: &SimView<'_>, e: SchedulerEvent) -> Decision {
                match e {
                    SchedulerEvent::SlaveFailed(j) => {
                        assert!(!view.slave_available(j));
                        self.seen.push("failed");
                    }
                    SchedulerEvent::SlaveRecovered(j) => {
                        assert!(view.slave_available(j));
                        self.seen.push("recovered");
                    }
                    _ => {}
                }
                // Only dispatch to available slaves.
                if view.link_idle() {
                    if let Some(&t) = view.pending_tasks().first() {
                        if let Some(slave) = view.available_slaves().next() {
                            return Decision::Send { task: t, slave };
                        }
                    }
                }
                Decision::Idle
            }
        }
        let pf = platform();
        let tl = timeline(vec![
            (0.5, 0, PlatformEventKind::Fail),
            (2.0, 0, PlatformEventKind::Recover),
        ]);
        let mut w = Watcher { seen: vec![] };
        let trace = simulate_with_events(&pf, &bag_of_tasks(2), &SimConfig::default(), &tl, &mut w)
            .unwrap();
        assert_eq!(w.seen, vec!["failed", "recovered"]);
        // The watcher fell back to P2 (the only available slave) after the
        // failure; everything still validates.
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn horizon_hint_visible() {
        struct CheckHorizon;
        impl OnlineScheduler for CheckHorizon {
            fn name(&self) -> String {
                "check-horizon".into()
            }
            fn init(&mut self, view: &SimView<'_>) {
                assert_eq!(view.horizon(), Some(4));
            }
            fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
                if view.link_idle() {
                    if let Some(&t) = view.pending_tasks().first() {
                        return Decision::Send {
                            task: t,
                            slave: SlaveId(0),
                        };
                    }
                }
                Decision::Idle
            }
        }
        let pf = platform();
        let trace = simulate(
            &pf,
            &bag_of_tasks(4),
            &SimConfig::with_horizon(4),
            &mut CheckHorizon,
        )
        .unwrap();
        assert_eq!(trace.len(), 4);
    }
}
