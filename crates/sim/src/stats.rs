//! Trace statistics: resource utilization and waiting-time decomposition.
//!
//! Answers the questions the paper's figures gesture at — *where does the
//! time go?* — for any finished trace: how busy the master's port was, how
//! busy each slave was, and how long tasks waited at the master versus in a
//! slave's queue.

use crate::platform::Platform;
use crate::trace::Trace;

/// Per-slave utilization figures.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SlaveStats {
    /// Tasks executed by this slave.
    pub tasks: usize,
    /// Total computation seconds.
    pub busy: f64,
    /// `busy / makespan` (0 for an empty trace).
    pub utilization: f64,
}

/// Whole-trace statistics.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceStats {
    /// Makespan, seconds.
    pub makespan: f64,
    /// Fraction of the makespan the master's port spent sending.
    pub port_utilization: f64,
    /// Per-slave figures, indexed by slave.
    pub slaves: Vec<SlaveStats>,
    /// Mean time tasks spent released-but-not-yet-being-sent (master queue).
    pub mean_master_wait: f64,
    /// Mean time tasks spent received-but-not-yet-computing (slave queue).
    pub mean_slave_wait: f64,
    /// Mean flow time `C_i − r_i`.
    pub mean_flow: f64,
}

/// Computes utilization and waiting statistics for a finished trace.
pub fn trace_stats(trace: &Trace, platform: &Platform) -> TraceStats {
    let makespan = trace.makespan();
    let n = trace.len().max(1) as f64;
    let m = platform.num_slaves();

    let mut port_busy = 0.0;
    let mut slaves = vec![
        SlaveStats {
            tasks: 0,
            busy: 0.0,
            utilization: 0.0,
        };
        m
    ];
    let mut master_wait = 0.0;
    let mut slave_wait = 0.0;
    let mut flow = 0.0;

    for r in trace.records() {
        port_busy += r.send_end - r.send_start;
        let s = &mut slaves[r.slave.0];
        s.tasks += 1;
        s.busy += r.compute_end - r.compute_start;
        master_wait += r.send_start - r.release;
        slave_wait += r.compute_start - r.send_end;
        flow += r.flow();
    }

    if makespan > 0.0 {
        for s in &mut slaves {
            s.utilization = s.busy / makespan;
        }
    }

    TraceStats {
        makespan,
        port_utilization: if makespan > 0.0 {
            port_busy / makespan
        } else {
            0.0
        },
        slaves,
        mean_master_wait: master_wait / n,
        mean_slave_wait: slave_wait / n,
        mean_flow: flow / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SlaveId;
    use crate::task::TaskId;
    use crate::time::Time;
    use crate::trace::TaskRecord;

    fn rec(
        task: usize,
        slave: usize,
        release: f64,
        send_start: f64,
        send_end: f64,
        compute_start: f64,
        compute_end: f64,
    ) -> TaskRecord {
        TaskRecord {
            task: TaskId(task),
            slave: SlaveId(slave),
            release: Time::new(release),
            send_start: Time::new(send_start),
            send_end: Time::new(send_end),
            compute_start: Time::new(compute_start),
            compute_end: Time::new(compute_end),
            size_c: 1.0,
            size_p: 1.0,
        }
    }

    #[test]
    fn decomposes_time_correctly() {
        // Two tasks: port busy 2 of 9 seconds; P1 computes 3, P2 computes 7.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let trace = Trace::new(vec![
            rec(0, 0, 0.0, 0.0, 1.0, 1.0, 4.0),
            rec(1, 1, 0.0, 1.0, 2.0, 2.0, 9.0),
        ]);
        let stats = trace_stats(&trace, &pf);
        assert!((stats.makespan - 9.0).abs() < 1e-12);
        assert!((stats.port_utilization - 2.0 / 9.0).abs() < 1e-12);
        assert_eq!(stats.slaves[0].tasks, 1);
        assert!((stats.slaves[0].utilization - 3.0 / 9.0).abs() < 1e-12);
        assert!((stats.slaves[1].utilization - 7.0 / 9.0).abs() < 1e-12);
        // Task 1 waited 1 s at the master (released 0, sent 1), none queued.
        assert!((stats.mean_master_wait - 0.5).abs() < 1e-12);
        assert!((stats.mean_slave_wait - 0.0).abs() < 1e-12);
        assert!((stats.mean_flow - (4.0 + 9.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn queueing_shows_up_as_slave_wait() {
        let pf = Platform::from_vectors(&[1.0], &[3.0]);
        // Second task received at 2 but computes only at 4.
        let trace = Trace::new(vec![
            rec(0, 0, 0.0, 0.0, 1.0, 1.0, 4.0),
            rec(1, 0, 0.0, 1.0, 2.0, 4.0, 7.0),
        ]);
        let stats = trace_stats(&trace, &pf);
        assert!((stats.mean_slave_wait - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let pf = Platform::from_vectors(&[1.0], &[1.0]);
        let stats = trace_stats(&Trace::default(), &pf);
        assert_eq!(stats.makespan, 0.0);
        assert_eq!(stats.port_utilization, 0.0);
        assert_eq!(stats.mean_flow, 0.0);
    }
}
