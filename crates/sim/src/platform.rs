//! The master–slave platform model.
//!
//! A platform is a master plus `m` slaves `P_1 … P_m`; slave `j` is fully
//! described by `c_j` (time for the master to push one unit-size task down
//! `j`'s link) and `p_j` (time for `j` to execute one unit-size task). The
//! master communicates under the **one-port model**: at most one send is in
//! flight at any instant (enforced by the engine, re-checked by the
//! validator).

use std::fmt;

/// Index of a slave processor (`P_{0} … P_{m−1}`; the paper numbers from 1).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct SlaveId(pub usize);

impl fmt::Debug for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

impl fmt::Display for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

/// One slave's characteristics for unit-size tasks.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SlaveSpec {
    /// Communication time: seconds for the master to send one task.
    pub c: f64,
    /// Computation time: seconds for the slave to execute one task.
    pub p: f64,
}

/// Which of the paper's platform classes a platform belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PlatformClass {
    /// All `c_j` equal and all `p_j` equal.
    Homogeneous,
    /// All `c_j` equal, heterogeneous `p_j` (paper §3.2).
    CommHomogeneous,
    /// All `p_j` equal, heterogeneous `c_j` (paper §3.3).
    CompHomogeneous,
    /// Both heterogeneous (paper §3.4).
    Heterogeneous,
}

impl fmt::Display for PlatformClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlatformClass::Homogeneous => "homogeneous",
            PlatformClass::CommHomogeneous => "communication-homogeneous",
            PlatformClass::CompHomogeneous => "computation-homogeneous",
            PlatformClass::Heterogeneous => "fully heterogeneous",
        };
        f.write_str(s)
    }
}

/// A master–slave platform: the ordered list of slave specs.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Platform {
    slaves: Vec<SlaveSpec>,
}

impl Platform {
    /// Builds a platform from per-slave specs.
    ///
    /// # Panics
    /// Panics if there is no slave or any `c_j`/`p_j` is not strictly
    /// positive and finite.
    pub fn new(slaves: Vec<SlaveSpec>) -> Self {
        assert!(
            !slaves.is_empty(),
            "Platform::new: at least one slave required"
        );
        for (j, s) in slaves.iter().enumerate() {
            assert!(
                s.c.is_finite() && s.c > 0.0 && s.p.is_finite() && s.p > 0.0,
                "Platform::new: slave {j} has non-positive or non-finite spec {s:?}"
            );
        }
        Platform { slaves }
    }

    /// Builds a platform from parallel `c` and `p` vectors.
    pub fn from_vectors(c: &[f64], p: &[f64]) -> Self {
        assert_eq!(c.len(), p.len(), "Platform::from_vectors: length mismatch");
        Platform::new(c.iter().zip(p).map(|(&c, &p)| SlaveSpec { c, p }).collect())
    }

    /// Builds a fully homogeneous platform of `m` identical slaves.
    pub fn homogeneous(m: usize, c: f64, p: f64) -> Self {
        Platform::new(vec![SlaveSpec { c, p }; m])
    }

    /// Number of slaves `m`.
    pub fn num_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// Communication time of slave `j`.
    pub fn c(&self, j: SlaveId) -> f64 {
        self.slaves[j.0].c
    }

    /// Computation time of slave `j`.
    pub fn p(&self, j: SlaveId) -> f64 {
        self.slaves[j.0].p
    }

    /// Spec of slave `j`.
    pub fn slave(&self, j: SlaveId) -> SlaveSpec {
        self.slaves[j.0]
    }

    /// Iterates over `(SlaveId, SlaveSpec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlaveId, SlaveSpec)> + '_ {
        self.slaves
            .iter()
            .enumerate()
            .map(|(j, &s)| (SlaveId(j), s))
    }

    /// All slave ids, in index order.
    pub fn slave_ids(&self) -> impl Iterator<Item = SlaveId> {
        (0..self.num_slaves()).map(SlaveId)
    }

    /// Classifies the platform, treating values within `rel_eps` (relative)
    /// as equal.
    pub fn classify_with(&self, rel_eps: f64) -> PlatformClass {
        let close = |a: f64, b: f64| (a - b).abs() <= rel_eps * a.abs().max(b.abs());
        let c0 = self.slaves[0].c;
        let p0 = self.slaves[0].p;
        let comm_homog = self.slaves.iter().all(|s| close(s.c, c0));
        let comp_homog = self.slaves.iter().all(|s| close(s.p, p0));
        match (comm_homog, comp_homog) {
            (true, true) => PlatformClass::Homogeneous,
            (true, false) => PlatformClass::CommHomogeneous,
            (false, true) => PlatformClass::CompHomogeneous,
            (false, false) => PlatformClass::Heterogeneous,
        }
    }

    /// Classifies with the default tolerance (`1e-12` relative).
    pub fn classify(&self) -> PlatformClass {
        self.classify_with(1e-12)
    }

    /// Aggregate steady-state task throughput `Σ 1/p_j` (tasks per second),
    /// an upper bound that ignores communications.
    pub fn compute_throughput(&self) -> f64 {
        self.slaves.iter().map(|s| 1.0 / s.p).sum()
    }

    /// Steady-state throughput bound including the one-port constraint:
    /// `min(Σ 1/p_j, 1/min_j c_j)`. The master cannot push more than one task
    /// per `min c_j` seconds even with infinitely fast slaves.
    pub fn system_throughput(&self) -> f64 {
        let min_c = self
            .slaves
            .iter()
            .map(|s| s.c)
            .fold(f64::INFINITY, f64::min);
        self.compute_throughput().min(1.0 / min_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_all_classes() {
        let homog = Platform::homogeneous(3, 1.0, 4.0);
        assert_eq!(homog.classify(), PlatformClass::Homogeneous);

        let comm = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        assert_eq!(comm.classify(), PlatformClass::CommHomogeneous);

        let comp = Platform::from_vectors(&[1.0, 2.0], &[5.0, 5.0]);
        assert_eq!(comp.classify(), PlatformClass::CompHomogeneous);

        let het = Platform::from_vectors(&[1.0, 2.0], &[5.0, 6.0]);
        assert_eq!(het.classify(), PlatformClass::Heterogeneous);
    }

    #[test]
    fn accessors() {
        let pf = Platform::from_vectors(&[1.0, 2.0], &[3.0, 7.0]);
        assert_eq!(pf.num_slaves(), 2);
        assert_eq!(pf.c(SlaveId(1)), 2.0);
        assert_eq!(pf.p(SlaveId(0)), 3.0);
        assert_eq!(pf.slave_ids().count(), 2);
    }

    #[test]
    fn throughput_bounds() {
        let pf = Platform::from_vectors(&[0.5, 1.0], &[2.0, 2.0]);
        assert!((pf.compute_throughput() - 1.0).abs() < 1e-12);
        // One-port cap: 1 / 0.5 = 2 tasks/s > compute throughput 1.0.
        assert!((pf.system_throughput() - 1.0).abs() < 1e-12);

        let comm_bound = Platform::from_vectors(&[2.0, 2.0], &[1.0, 1.0]);
        assert!((comm_bound.system_throughput() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn empty_platform_rejected() {
        let _ = Platform::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn non_positive_spec_rejected() {
        let _ = Platform::from_vectors(&[0.0], &[1.0]);
    }

    #[test]
    fn display_ids() {
        assert_eq!(SlaveId(0).to_string(), "P1");
        assert_eq!(format!("{:?}", SlaveId(2)), "P3");
    }
}
