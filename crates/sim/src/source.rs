//! The [`TaskSource`] trait: a pull-based, bounded-memory task stream.
//!
//! The materialized entry points ([`crate::simulate`] and friends) receive
//! the whole instance as a `&[TaskArrival]`; the streamed entry points
//! ([`crate::simulate_streamed`] and friends) instead *pull* arrivals one
//! at a time from a `TaskSource`, so an instance of a million tasks never
//! exists in memory at once — the engine keeps a bounded window of live
//! task slots and recycles a slot once its record is finalized.
//!
//! Implementations live in `mss-workload` (`MaterializedSource`,
//! `GeneratedSource`, `TraceSource`); this crate only defines the contract
//! the engine consumes, mirroring how `PlatformStream` streams platforms.
//!
//! # Contract
//!
//! * **Non-decreasing releases.** `next_task` must yield arrivals with
//!   non-decreasing `release` times — the stream *is* the release order.
//!   The engine checks this and panics on a violation (a decreasing
//!   release would silently reorder history, breaking determinism).
//! * **Seed-determinism.** Two sources constructed from the same inputs
//!   must yield the identical sequence; [`TaskSource::reset`] rewinds so
//!   the same source replays it. The sweep executor relies on this to
//!   re-instantiate a source per fan-out arm instead of cloning streams.
//! * **Task identity.** The engine assigns dense [`TaskId`]s in pull
//!   order (`0, 1, 2, …`), which — because releases are non-decreasing —
//!   is exactly the id order of the equivalent materialized run, so
//!   streamed and materialized runs are bit-identical wherever both fit
//!   in memory.
//!
//! [`TaskId`]: crate::TaskId

use crate::task::TaskArrival;

/// A pull-based stream of task arrivals with non-decreasing release times.
///
/// See the [module docs](self) for the determinism contract.
///
/// # Examples
/// ```
/// use mss_sim::{TaskArrival, TaskSource};
///
/// /// `n` nominal tasks released at integer times 0, 1, 2, …
/// struct EverySecond { next: usize, n: usize }
/// impl TaskSource for EverySecond {
///     fn next_task(&mut self) -> Option<TaskArrival> {
///         (self.next < self.n).then(|| {
///             let t = TaskArrival::at(self.next as f64);
///             self.next += 1;
///             t
///         })
///     }
///     fn len_hint(&self) -> Option<usize> { Some(self.n) }
///     fn reset(&mut self) { self.next = 0; }
/// }
///
/// let mut s = EverySecond { next: 0, n: 3 };
/// assert_eq!(s.next_task().unwrap().release.as_f64(), 0.0);
/// assert_eq!(s.next_task().unwrap().release.as_f64(), 1.0);
/// s.reset();
/// assert_eq!(s.next_task().unwrap().release.as_f64(), 0.0);
/// ```
pub trait TaskSource {
    /// Pulls the next arrival; `None` once the stream is exhausted.
    /// Releases must be non-decreasing across the whole stream.
    fn next_task(&mut self) -> Option<TaskArrival>;

    /// Total number of tasks the stream will yield, when known up front
    /// (used for horizon hints and step budgets; `None` for open-ended
    /// streams).
    fn len_hint(&self) -> Option<usize>;

    /// Rewinds to the beginning; the replay must be identical to the
    /// first pass, element for element.
    fn reset(&mut self);
}

/// A boxed source is a source (so heterogeneous sources can share a
/// collection without generics).
impl TaskSource for Box<dyn TaskSource + '_> {
    fn next_task(&mut self) -> Option<TaskArrival> {
        (**self).next_task()
    }
    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

/// A mutable reference forwards (so callers keep ownership while the
/// engine pulls).
impl<S: TaskSource + ?Sized> TaskSource for &mut S {
    fn next_task(&mut self) -> Option<TaskArrival> {
        (**self).next_task()
    }
    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(usize);
    impl TaskSource for Two {
        fn next_task(&mut self) -> Option<TaskArrival> {
            (self.0 < 2).then(|| {
                let t = TaskArrival::at(self.0 as f64);
                self.0 += 1;
                t
            })
        }
        fn len_hint(&self) -> Option<usize> {
            Some(2)
        }
        fn reset(&mut self) {
            self.0 = 0;
        }
    }

    #[test]
    fn boxed_and_borrowed_sources_forward() {
        let mut boxed: Box<dyn TaskSource> = Box::new(Two(0));
        assert_eq!(boxed.len_hint(), Some(2));
        assert!(boxed.next_task().is_some());
        boxed.reset();
        let mut count = 0;
        let by_ref = &mut boxed;
        while by_ref.next_task().is_some() {
            count += 1;
        }
        assert_eq!(count, 2);
    }
}
