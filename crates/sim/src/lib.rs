//! # mss-sim — discrete-event simulator for one-port master-slave platforms
//!
//! This crate is the testbed substitute for the MPI platform of Pineau,
//! Robert & Vivien's *"The impact of heterogeneity on master-slave on-line
//! scheduling"* (IPPS 2006). It implements the paper's exact machine model:
//!
//! * a **master** that holds every task and sends them to slaves over a
//!   single serial port (**one-port model**: at most one send in flight);
//! * `m` **slaves** `P_j`, each receiving a task in `c_j` seconds and then
//!   executing it in `p_j` seconds, serially and FIFO;
//! * **on-line releases**: task `i` appears at the master at `r_i`, unknown
//!   beforehand;
//! * **dynamic platforms** (optional): a [`Timeline`] of platform [`events`]
//!   — slave failures with lost-work re-release, recoveries, link/speed
//!   drift — consumed by [`simulate_with_events`]; an empty timeline is
//!   bit-for-bit the paper's static model.
//!
//! Schedulers implement [`OnlineScheduler`] and observe the world through
//! [`SimView`]; [`simulate`] produces a [`Trace`] from which makespan,
//! max-flow and sum-flow are computed, and [`validate`] re-checks every model
//! invariant on the result.
//!
//! How much a view reveals is governed by the run's **information tier**
//! ([`InfoTier`], set on [`SimConfig`]): `Clairvoyant` (the paper's fully
//! informed master — the default), `SpeedOblivious` (nominal `c_j`/`p_j`
//! hidden; the view answers from per-slave estimates learned on-line from
//! observed send/completion timestamps), and `NonClairvoyant` (task-count
//! hints hidden too; counts, availability and learned rates only).
//!
//! Every engine boundary carries an instrumentation hook ([`Probe`], from
//! `mss-obs`): [`simulate_with_probe_in`] runs with counters
//! ([`RunCounters`]) or a span recorder ([`TraceRecorder`]) attached, while
//! the default [`NoopProbe`] monomorphizes the hooks away entirely — the
//! unprobed entry points are bit-identical *and* instruction-identical to
//! the pre-instrumentation engine.
//!
//! ```
//! use mss_sim::{simulate, Decision, OnlineScheduler, Platform, SchedulerEvent,
//!               SimConfig, SimView, SlaveId, bag_of_tasks};
//!
//! /// Greedy: always send the next task to the slave finishing it first.
//! struct Greedy;
//! impl OnlineScheduler for Greedy {
//!     fn name(&self) -> String { "greedy".into() }
//!     fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
//!         match (view.link_idle(), view.pending_tasks().first()) {
//!             (true, Some(&task)) => {
//!                 let slave = view.platform().slave_ids()
//!                     .min_by(|&a, &b| view.completion_estimate(a)
//!                         .cmp(&view.completion_estimate(b)))
//!                     .unwrap();
//!                 Decision::Send { task, slave }
//!             }
//!             _ => Decision::Idle,
//!         }
//!     }
//! }
//!
//! let platform = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
//! let trace = simulate(&platform, &bag_of_tasks(4), &SimConfig::default(), &mut Greedy).unwrap();
//! assert!(mss_sim::validate(&trace, &platform).is_empty());
//! assert!(trace.makespan() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod events;
mod gantt;
pub mod info;
pub mod kernel;
mod platform;
mod scheduler;
pub mod source;
mod stats;
mod task;
mod time;
mod trace;
mod view;

pub use engine::{
    simulate, simulate_in, simulate_objectives_in, simulate_objectives_with_probe_in,
    simulate_streamed, simulate_streamed_objectives_in, simulate_streamed_objectives_with_probe_in,
    simulate_streamed_with_probe_in, simulate_with_events, simulate_with_events_in,
    simulate_with_probe_in, RunObjectives, SimConfig, SimError, SimWorkspace, StreamStats,
};
pub use events::{PlatformEvent, PlatformEventKind, Timeline};
pub use gantt::render as render_gantt;
pub use gantt::render_with_downtime;
pub use info::{InfoTier, SlaveEstimate, SlaveEstimates};
pub use kernel::{
    chunked_argmin, scan_argmin, ArgminTree, IncrementalArgmin, TouchJournal, TREE_THRESHOLD,
};
pub use mss_obs::{
    DigestEvent, DigestProbe, Histogram, Marker, MarkerKind, MetricsProbe, NoopProbe, Probe,
    RunCounters, RunHistograms, RunMetrics, Span, SpanKind, TraceRecorder,
};
pub use platform::{Platform, PlatformClass, SlaveId, SlaveSpec};
pub use scheduler::{Decision, OnlineScheduler, SchedulerEvent};
pub use source::TaskSource;
pub use stats::{trace_stats, SlaveStats, TraceStats};
pub use task::{bag_of_tasks, released_at, TaskArrival, TaskId};
pub use time::{Time, TIME_EPS};
pub use trace::{validate, TaskRecord, Trace, TraceViolation};
pub use view::{SimView, SlaveView, SlaveViews, ViewState};
