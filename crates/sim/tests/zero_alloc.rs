//! Steady-state allocation contract of the engine hot path.
//!
//! A counting global allocator measures heap allocations during a full
//! simulation on a *warm* [`SimWorkspace`]: the event loop itself must not
//! allocate at all — the only permitted allocations of a run are the
//! returned [`Trace`]'s record vector. `ms-lab bench` reports this contract
//! (`allocs_per_event_steady_state`) in `BENCH_engine.json`; this test is
//! what enforces it.
//!
//! This file deliberately contains a single `#[test]` so no sibling test
//! thread can allocate concurrently and pollute the counter.

use mss_sim::{
    bag_of_tasks, simulate_in, simulate_streamed_objectives_in, simulate_with_probe_in, Decision,
    IncrementalArgmin, NoopProbe, OnlineScheduler, Platform, SchedulerEvent, SimConfig, SimView,
    SimWorkspace, SlaveId, TaskArrival, TaskSource, Timeline, Trace,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Forwards to the system allocator, counting every allocation.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation-free greedy scheduler: oldest pending task to the slave with
/// the earliest nominal completion estimate.
struct Greedy;

impl OnlineScheduler for Greedy {
    fn name(&self) -> String {
        "greedy".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
        if !view.link_idle() {
            return Decision::Idle;
        }
        let Some(&task) = view.pending_tasks().first() else {
            return Decision::Idle;
        };
        let mut best = SlaveId(0);
        for j in 1..view.num_slaves() {
            if view.completion_estimate(SlaveId(j)) < view.completion_estimate(best) {
                best = SlaveId(j);
            }
        }
        Decision::Send { task, slave: best }
    }
}

/// SRPT-shaped scheduler on the incremental decision kernel, with the
/// tree forced on (threshold 0): after the warm-up run sized the
/// tournament tree, syncing from the touch journal and answering argmin
/// queries must not allocate.
struct KernelGreedy {
    kernel: IncrementalArgmin,
}

impl OnlineScheduler for KernelGreedy {
    fn name(&self) -> String {
        "kernel-greedy".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
        if !view.link_idle() {
            return Decision::Idle;
        }
        let Some(&task) = view.pending_tasks().first() else {
            return Decision::Idle;
        };
        let slave = self.kernel.argmin(view, |j| {
            let j = SlaveId(j);
            if view.slave_idle(j) {
                view.believed_p(j)
            } else {
                f64::INFINITY
            }
        });
        if view.slave_idle(slave) {
            Decision::Send { task, slave }
        } else {
            Decision::Idle
        }
    }
}

/// Allocation-free uniform arrival stream computed on the fly — no backing
/// task vector exists anywhere in the process.
struct UniformSource {
    n: usize,
    gap: f64,
    next: usize,
}

impl TaskSource for UniformSource {
    fn next_task(&mut self) -> Option<TaskArrival> {
        if self.next == self.n {
            return None;
        }
        let t = TaskArrival::at(self.next as f64 * self.gap);
        self.next += 1;
        Some(t)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.n)
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

#[test]
fn steady_state_events_allocate_nothing() {
    let platform = Platform::from_vectors(&[0.2, 0.5, 0.9], &[1.0, 2.0, 3.0]);
    let n = 400;
    let tasks = bag_of_tasks(n);
    let cfg = SimConfig::with_horizon(n);
    let mut ws = SimWorkspace::new();

    // Warm-up run sizes every workspace buffer.
    let warm: Trace = simulate_in(&mut ws, &platform, &tasks, &cfg, &mut Greedy).unwrap();
    assert_eq!(warm.len(), n);

    let before = ALLOCS.load(Ordering::SeqCst);
    let trace = simulate_in(&mut ws, &platform, &tasks, &cfg, &mut Greedy).unwrap();
    let during = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(trace, warm, "warm rerun must be bit-identical");

    // The run processed 3n events (release, send-complete, compute-complete
    // per task) plus hundreds of scheduler polls. The only allocation we
    // accept is the returned trace's record vector (plus minuscule slack
    // for Trace plumbing); any per-event allocation would show up as
    // hundreds of counts here.
    assert!(
        during <= 4,
        "expected an allocation-free event loop, counted {during} allocations \
         over {} events (≈{:.3} per event)",
        3 * n,
        during as f64 / (3 * n) as f64
    );

    // The disabled-instrumentation path must uphold the same contract: a
    // probed run with [`NoopProbe`] monomorphizes every hook away, so it
    // allocates exactly as little as the uninstrumented entry point — and
    // returns bit-identical results.
    let before = ALLOCS.load(Ordering::SeqCst);
    let probed = simulate_with_probe_in(
        &mut ws,
        &platform,
        &tasks,
        &cfg,
        &Timeline::EMPTY,
        &mut Greedy,
        &mut NoopProbe,
    )
    .unwrap();
    let during = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(probed, warm, "NoopProbe run must be bit-identical");
    assert!(
        during <= 4,
        "expected the probe-disabled hot path to stay allocation-free, \
         counted {during} allocations over {} events",
        3 * n
    );

    // Bounded-memory streaming contract (#13): a 100k-task streamed run on
    // the same warm workspace keeps its live task-slot high-water mark at
    // O(slaves + outstanding) — independent of the instance size — and the
    // steady-state event loop stays allocation-free. The stream's inter-
    // arrival gap (1.0) sits below the platform's aggregate service rate
    // (Σ 1/p ≈ 1.83/s), so the outstanding set stays small.
    let big = 100_000;
    let mut source = UniformSource {
        n: big,
        gap: 1.0,
        next: 0,
    };
    let scfg = SimConfig::with_horizon(big);
    // Warm-up sizes the (bounded) streaming window and recycler.
    let warm_stats = simulate_streamed_objectives_in(
        &mut ws,
        &platform,
        &mut source,
        &scfg,
        &Timeline::EMPTY,
        &mut Greedy,
    )
    .unwrap();
    source.reset();
    let before = ALLOCS.load(Ordering::SeqCst);
    let stats = simulate_streamed_objectives_in(
        &mut ws,
        &platform,
        &mut source,
        &scfg,
        &Timeline::EMPTY,
        &mut Greedy,
    )
    .unwrap();
    let during = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(stats.tasks, big);
    assert_eq!(
        stats.objectives.makespan.to_bits(),
        warm_stats.objectives.makespan.to_bits(),
        "warm streamed rerun must be bit-identical"
    );
    // Concrete bound: a handful of slots per slave for in-flight work plus
    // the small stable queue the sub-critical load sustains. 100k tasks
    // must never push the window anywhere near the instance size.
    let cap = 16 * platform.num_slaves() + 64;
    assert!(
        stats.peak_live_slots <= cap,
        "live task-slot high-water mark {} exceeds O(slaves + outstanding) cap {cap}",
        stats.peak_live_slots
    );
    assert!(
        stats.peak_resident_slots <= 2 * cap + 128,
        "resident slots {} exceed the recycler's compaction envelope",
        stats.peak_resident_slots
    );
    assert!(
        during <= 4,
        "expected the streamed event loop to stay allocation-free, \
         counted {during} allocations over {} events",
        3 * big
    );

    // Decision-kernel steady state (contract #15): with the tournament
    // tree forced on, a warm rerun — tree rebuild at the new run nonce,
    // journal replays, and an argmin query per decision — allocates
    // nothing. The tree's backing vectors were sized by the warm-up and
    // the platform size is unchanged, so `rebuild` only rewrites them.
    let mut kernel_sched = KernelGreedy {
        kernel: IncrementalArgmin::new().with_threshold(0),
    };
    let kernel_warm: Trace =
        simulate_in(&mut ws, &platform, &tasks, &cfg, &mut kernel_sched).unwrap();
    assert_eq!(kernel_warm.len(), n);
    let before = ALLOCS.load(Ordering::SeqCst);
    let kernel_trace = simulate_in(&mut ws, &platform, &tasks, &cfg, &mut kernel_sched).unwrap();
    let during = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        kernel_trace, kernel_warm,
        "warm kernel rerun must be bit-identical"
    );
    assert!(
        during <= 4,
        "expected the kernel-backed event loop to stay allocation-free, \
         counted {during} allocations over {} events",
        3 * n
    );
}
