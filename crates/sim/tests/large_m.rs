//! Large-`m` smoke: the engine and the decision kernel at 10,000 slaves.
//!
//! A streamed run on a 10k-slave platform must (a) complete within the
//! engine's step budget, (b) keep the bounded-memory contract's resident
//! task-slot window independent of the instance size, and (c) serve its
//! decisions from the tournament tree — the per-decision cost that used
//! to be `O(m)` linear scans is what this PR makes sublinear, and this
//! test is the floor that keeps it that way. CI runs it in release as
//! the `large-m` smoke gate.

use mss_sim::{
    simulate_streamed_objectives_in, Decision, IncrementalArgmin, OnlineScheduler, Platform,
    SchedulerEvent, SimConfig, SimView, SimWorkspace, SlaveId, TaskArrival, TaskSource, Timeline,
};

/// SRPT on the incremental kernel (the shape `mss-core`'s production SRPT
/// uses; re-implemented here because `mss-sim` cannot depend on it).
struct KernelSrpt {
    kernel: IncrementalArgmin,
}

impl OnlineScheduler for KernelSrpt {
    fn name(&self) -> String {
        "kernel-srpt".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
        if !view.link_idle() {
            return Decision::Idle;
        }
        let Some(&task) = view.pending_tasks().first() else {
            return Decision::Idle;
        };
        let slave = self.kernel.argmin(view, |j| {
            let j = SlaveId(j);
            if view.slave_idle(j) {
                view.believed_p(j)
            } else {
                f64::INFINITY
            }
        });
        if view.slave_idle(slave) {
            Decision::Send { task, slave }
        } else {
            Decision::Idle
        }
    }

    fn poll_driven(&self) -> bool {
        true
    }
}

/// Arrival stream computed on the fly; nothing scales with the instance.
struct UniformSource {
    n: usize,
    gap: f64,
    next: usize,
}

impl TaskSource for UniformSource {
    fn next_task(&mut self) -> Option<TaskArrival> {
        if self.next == self.n {
            return None;
        }
        let t = TaskArrival::at(self.next as f64 * self.gap);
        self.next += 1;
        Some(t)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.n)
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

#[test]
fn ten_thousand_slaves_streamed_within_budget() {
    let m = 10_000;
    let c: Vec<f64> = (0..m).map(|j| 0.001 + 1e-5 * (j % 97) as f64).collect();
    let p: Vec<f64> = (0..m).map(|j| 2.0 + 0.03 * (j % 89) as f64).collect();
    let platform = Platform::from_vectors(&c, &p);

    // ~2k tasks streamed fast enough that many slaves cycle busy/idle but
    // the one-port master never backlogs unboundedly (gap > min c).
    let n = 2_000;
    let mut source = UniformSource {
        n,
        gap: 0.01,
        next: 0,
    };
    let cfg = SimConfig {
        horizon_hint: Some(n),
        // Tight step budget: ~3 events per task plus scheduler polls. A
        // regression to per-event O(m) rescans would not trip this (the
        // budget counts steps, not work), but a wake-loop bug would.
        max_steps: 40 * n,
        ..SimConfig::default()
    };
    let mut ws = SimWorkspace::new();
    let mut sched = KernelSrpt {
        kernel: IncrementalArgmin::new(),
    };

    mss_obs::kernel_stats_reset();
    let stats = simulate_streamed_objectives_in(
        &mut ws,
        &platform,
        &mut source,
        &cfg,
        &Timeline::EMPTY,
        &mut sched,
    )
    .expect("10k-slave streamed run completes within the step budget");
    assert_eq!(stats.tasks, n);
    assert!(stats.objectives.makespan > 0.0);

    // Bounded memory: resident task slots scale with outstanding work,
    // not with m or n (SRPT keeps at most one outstanding task per slave,
    // and the 0.01 gap keeps the pending queue shallow).
    assert!(
        stats.peak_live_slots <= 4 * n.min(m),
        "live task-slot peak {} is not bounded by outstanding work",
        stats.peak_live_slots
    );
    assert!(stats.peak_resident_slots >= stats.peak_live_slots);

    // The decisions were tree-served: at m = 10k every query must go
    // through the tournament tree (threshold is 64), with exactly one
    // rebuild (first sync of the run) and zero scan fallbacks.
    let k = mss_obs::kernel_stats_snapshot();
    assert!(k.queries > 0, "kernel never queried: {k:?}");
    assert_eq!(k.scans, 0, "scan fallback used at m = 10k: {k:?}");
    assert_eq!(k.rebuilds, 1, "expected exactly one rebuild: {k:?}");
}
