//! Instrumentation-transparency property tests: probes are observers only.
//!
//! ARCHITECTURE.md contract #11 in executable form — for arbitrary
//! instances (random platforms, task streams, fault/drift timelines,
//! every information tier) and an arbitrary well-formed scheduler, the
//! engine's result is *bit-identical* whether it runs uninstrumented,
//! with the explicit [`NoopProbe`], or with the heavyweight
//! `(RunCounters, TraceRecorder)` probe pair — including error cases
//! (step-budget aborts), which must abort at the identical step with the
//! identical message.

use mss_sim::{
    simulate_with_events_in, simulate_with_probe_in, Decision, InfoTier, NoopProbe,
    OnlineScheduler, Platform, PlatformEvent, PlatformEventKind, RunCounters, SchedulerEvent,
    SimConfig, SimView, SimWorkspace, SlaveId, TaskArrival, Time, Timeline, TraceRecorder,
};
use proptest::prelude::*;

/// Tape-driven but always-valid scheduler (see `engine_properties.rs`).
struct TapeScheduler {
    tape: Vec<u32>,
    pos: usize,
    naps: usize,
}

impl TapeScheduler {
    fn new(tape: Vec<u32>) -> Self {
        TapeScheduler {
            tape,
            pos: 0,
            naps: 0,
        }
    }

    fn draw(&mut self) -> u32 {
        let v = self.tape[self.pos % self.tape.len()];
        self.pos += 1;
        v
    }
}

impl OnlineScheduler for TapeScheduler {
    fn name(&self) -> String {
        "tape".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
        if !view.link_idle() || view.pending_tasks().is_empty() {
            return Decision::Idle;
        }
        let choice = self.draw();
        if choice.is_multiple_of(7) && self.naps < 3 {
            self.naps += 1;
            return Decision::WakeAt(view.now() + 0.25);
        }
        let task = view.pending_tasks()[choice as usize % view.pending_tasks().len()];
        let slave = SlaveId(self.draw() as usize % view.num_slaves());
        Decision::Send { task, slave }
    }
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    proptest::collection::vec((0.01f64..2.0, 0.1f64..8.0), 1..6).prop_map(|specs| {
        let (c, p): (Vec<f64>, Vec<f64>) = specs.into_iter().unzip();
        Platform::from_vectors(&c, &p)
    })
}

fn arb_tasks() -> impl Strategy<Value = Vec<TaskArrival>> {
    proptest::collection::vec((0.0f64..20.0, 0.9f64..1.1, 0.9f64..1.1), 1..25).prop_map(|ts| {
        ts.into_iter()
            .map(|(r, sc, sp)| TaskArrival {
                release: Time::new(r),
                size_c: sc,
                size_p: sp,
            })
            .collect()
    })
}

fn arb_info() -> impl Strategy<Value = InfoTier> {
    prop_oneof![
        Just(InfoTier::Clairvoyant),
        Just(InfoTier::SpeedOblivious),
        Just(InfoTier::NonClairvoyant),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Uninstrumented, `NoopProbe`-instrumented, and fully instrumented
    /// runs of the identical scenario agree bit for bit — successes *and*
    /// errors — across fault/drift timelines and information tiers.
    #[test]
    fn probes_are_observationally_pure(
        platform in arb_platform(),
        tasks in arb_tasks(),
        tape in proptest::collection::vec(0u32..1000, 8..64),
        info in arb_info(),
        faults in proptest::collection::vec(
            (0usize..8, 0.0f64..25.0, 0.1f64..10.0, 0.25f64..3.0), 0..5),
    ) {
        let mut events = Vec::new();
        for &(j, at, up_after, factor) in &faults {
            events.push(PlatformEvent {
                time: Time::new(at),
                slave: SlaveId(j),
                kind: PlatformEventKind::Fail,
            });
            events.push(PlatformEvent {
                time: Time::new(at + up_after),
                slave: SlaveId(j),
                kind: PlatformEventKind::Recover,
            });
            events.push(PlatformEvent {
                time: Time::new(at / 2.0),
                slave: SlaveId(j),
                kind: PlatformEventKind::SetSpeedFactor(factor),
            });
        }
        let timeline = Timeline::new(events);
        // Tight budget: tape schedulers may gamble on down slaves forever,
        // so a fair share of cases exercises the *error* path — which must
        // be transparent too.
        let cfg = SimConfig { max_steps: 100_000, info, ..SimConfig::default() };

        let mut ws = SimWorkspace::new();
        let plain = simulate_with_events_in(
            &mut ws, &platform, &tasks, &cfg, &timeline,
            &mut TapeScheduler::new(tape.clone()));
        let noop = simulate_with_probe_in(
            &mut ws, &platform, &tasks, &cfg, &timeline,
            &mut TapeScheduler::new(tape.clone()), &mut NoopProbe);
        let mut probe = (RunCounters::new(), TraceRecorder::new());
        let heavy = simulate_with_probe_in(
            &mut ws, &platform, &tasks, &cfg, &timeline,
            &mut TapeScheduler::new(tape), &mut probe);

        prop_assert_eq!(&plain, &noop);
        prop_assert_eq!(&plain, &heavy);

        // The heavy probe really observed the run it did not perturb.
        let (counters, recorder) = probe;
        if let Ok(trace) = &plain {
            prop_assert_eq!(counters.computes_completed as usize, trace.len());
            prop_assert_eq!(
                counters.sends_started,
                counters.sends_delivered + counters.sends_lost
            );
            let completed_computes = recorder
                .spans
                .iter()
                .filter(|s| s.kind == mss_sim::SpanKind::Compute && s.completed)
                .count();
            prop_assert_eq!(completed_computes, trace.len());
            prop_assert_eq!(counters.budget_aborts, 0);
        }
    }
}
