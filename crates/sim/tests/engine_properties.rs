//! Engine-level property tests: whatever a (well-formed) scheduler does,
//! the resulting trace satisfies every model invariant, and the objective
//! folds agree with a straightforward recomputation.

use mss_sim::{
    bag_of_tasks, simulate, simulate_with_events, simulate_with_events_in, validate, Decision,
    OnlineScheduler, Platform, PlatformEvent, PlatformEventKind, SchedulerEvent, SimConfig,
    SimView, SimWorkspace, SlaveId, TaskArrival, Time, Timeline,
};
use proptest::prelude::*;

/// A scheduler whose choices are driven by a pre-drawn pseudo-random tape,
/// but which always makes *valid* decisions (send some pending task to some
/// existing slave whenever the port is idle, sometimes idling or napping).
struct TapeScheduler {
    tape: Vec<u32>,
    pos: usize,
    naps: usize,
}

impl TapeScheduler {
    fn new(tape: Vec<u32>) -> Self {
        TapeScheduler {
            tape,
            pos: 0,
            naps: 0,
        }
    }

    fn draw(&mut self) -> u32 {
        let v = self.tape[self.pos % self.tape.len()];
        self.pos += 1;
        v
    }
}

impl OnlineScheduler for TapeScheduler {
    fn name(&self) -> String {
        "tape".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
        if !view.link_idle() || view.pending_tasks().is_empty() {
            return Decision::Idle;
        }
        let choice = self.draw();
        // Nap occasionally (at most a few times, to guarantee progress).
        if choice.is_multiple_of(7) && self.naps < 3 {
            self.naps += 1;
            return Decision::WakeAt(view.now() + 0.25);
        }
        let task = view.pending_tasks()[choice as usize % view.pending_tasks().len()];
        let slave = SlaveId(self.draw() as usize % view.num_slaves());
        Decision::Send { task, slave }
    }
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    proptest::collection::vec((0.01f64..2.0, 0.1f64..8.0), 1..6).prop_map(|specs| {
        let (c, p): (Vec<f64>, Vec<f64>) = specs.into_iter().unzip();
        Platform::from_vectors(&c, &p)
    })
}

fn arb_tasks() -> impl Strategy<Value = Vec<TaskArrival>> {
    proptest::collection::vec((0.0f64..20.0, 0.9f64..1.1, 0.9f64..1.1), 1..25).prop_map(|ts| {
        ts.into_iter()
            .map(|(r, sc, sp)| TaskArrival {
                release: Time::new(r),
                size_c: sc,
                size_p: sp,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_schedulers_yield_valid_traces(
        platform in arb_platform(),
        tasks in arb_tasks(),
        tape in proptest::collection::vec(0u32..1000, 8..64),
    ) {
        let mut sched = TapeScheduler::new(tape);
        let trace = simulate(&platform, &tasks, &SimConfig::default(), &mut sched)
            .expect("tape scheduler always progresses");
        let violations = validate(&trace, &platform);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        prop_assert_eq!(trace.len(), tasks.len());
    }

    #[test]
    fn objectives_match_recomputation(
        platform in arb_platform(),
        tasks in arb_tasks(),
        tape in proptest::collection::vec(0u32..1000, 8..64),
    ) {
        let mut sched = TapeScheduler::new(tape);
        let trace = simulate(&platform, &tasks, &SimConfig::default(), &mut sched).unwrap();

        let mut makespan: f64 = 0.0;
        let mut max_flow: f64 = 0.0;
        let mut sum_flow = 0.0;
        for r in trace.records() {
            makespan = makespan.max(r.compute_end.as_f64());
            max_flow = max_flow.max(r.compute_end - r.release);
            sum_flow += r.compute_end - r.release;
        }
        prop_assert!((trace.makespan() - makespan).abs() < 1e-9);
        prop_assert!((trace.max_flow() - max_flow).abs() < 1e-9);
        prop_assert!((trace.sum_flow() - sum_flow).abs() < 1e-6);
    }

    #[test]
    fn flow_lower_bound_per_task(
        platform in arb_platform(),
        tasks in arb_tasks(),
        tape in proptest::collection::vec(0u32..1000, 8..64),
    ) {
        // Each task's flow is at least c_j·size_c + p_j·size_p on its slave.
        let mut sched = TapeScheduler::new(tape);
        let trace = simulate(&platform, &tasks, &SimConfig::default(), &mut sched).unwrap();
        for r in trace.records() {
            let lb = platform.c(r.slave) * r.size_c + platform.p(r.slave) * r.size_p;
            prop_assert!(r.flow() >= lb - 1e-9,
                "task {:?} flow {} below lower bound {}", r.task, r.flow(), lb);
        }
    }

    #[test]
    fn bag_of_tasks_all_released_at_zero(n in 1usize..50) {
        let tasks = bag_of_tasks(n);
        prop_assert_eq!(tasks.len(), n);
        prop_assert!(tasks.iter().all(|t| t.release == Time::ZERO));
    }

    /// The incremental slave-view cache and the workspace reuse are
    /// observationally transparent under arbitrary event sequences.
    ///
    /// Two layers of checking: (1) this is a debug build, so the engine's
    /// internal oracle re-derives every cached `SlaveView` from scratch
    /// before each scheduler callback and asserts *bitwise* equality with
    /// the incrementally maintained one — any divergence panics the run;
    /// (2) the same scenario simulated on a fresh workspace, on a reused
    /// (dirty) workspace, and through the plain allocating entry point must
    /// produce identical results, including identical errors.
    #[test]
    fn incremental_views_and_workspace_reuse_are_exact(
        platform in arb_platform(),
        tasks in arb_tasks(),
        tape in proptest::collection::vec(0u32..1000, 8..64),
        faults in proptest::collection::vec(
            (0usize..8, 0.0f64..25.0, 0.1f64..10.0, 0.25f64..3.0), 0..5),
    ) {
        // Crash/recover pairs plus drift on pseudo-random slaves (indices
        // past the platform are deliberately kept: the engine must ignore
        // them). Tape schedulers may gamble on down slaves forever, so a
        // tight step budget turns livelocks into a (deterministic) error.
        let mut events = Vec::new();
        for &(j, at, up_after, factor) in &faults {
            events.push(PlatformEvent {
                time: Time::new(at),
                slave: SlaveId(j),
                kind: PlatformEventKind::Fail,
            });
            events.push(PlatformEvent {
                time: Time::new(at + up_after),
                slave: SlaveId(j),
                kind: PlatformEventKind::Recover,
            });
            events.push(PlatformEvent {
                time: Time::new(at / 2.0),
                slave: SlaveId(j),
                kind: PlatformEventKind::SetSpeedFactor(factor),
            });
        }
        let timeline = Timeline::new(events);
        let cfg = SimConfig { max_steps: 100_000, ..SimConfig::default() };

        let mut ws = SimWorkspace::new();
        let fresh_ws = simulate_with_events_in(
            &mut ws, &platform, &tasks, &cfg, &timeline,
            &mut TapeScheduler::new(tape.clone()));
        let reused_ws = simulate_with_events_in(
            &mut ws, &platform, &tasks, &cfg, &timeline,
            &mut TapeScheduler::new(tape.clone()));
        let plain = simulate_with_events(
            &platform, &tasks, &cfg, &timeline, &mut TapeScheduler::new(tape));

        prop_assert_eq!(&fresh_ws, &reused_ws);
        prop_assert_eq!(&fresh_ws, &plain);
        if let Ok(trace) = fresh_ws {
            let violations = validate(&trace, &platform);
            prop_assert!(violations.is_empty(), "violations: {violations:?}");
            prop_assert_eq!(trace.len(), tasks.len());
        }
    }
}
