//! The decision-digest auditor's contract:
//!
//! * the digest is a pure function of the run — composing the
//!   [`DigestProbe`] with other probes ([`NoopProbe`], [`MetricsProbe`])
//!   never changes it (probes are observers, and the decision hooks fire
//!   at the same sites regardless of who else is listening);
//! * perturbing a single scheduler decision changes the digest, and the
//!   ledger pinpoints that decision as the first divergent event.

use mss_sim::{
    simulate_with_probe_in, Decision, DigestProbe, MetricsProbe, NoopProbe, OnlineScheduler,
    Platform, SchedulerEvent, SimConfig, SimView, SimWorkspace, SlaveId, TaskArrival, Time,
    Timeline,
};
use proptest::prelude::*;

/// Tape-driven but always-valid scheduler (same shape as the engine
/// property tests): send some pending task to some slave, occasionally
/// idle or nap.
struct TapeScheduler {
    tape: Vec<u32>,
    pos: usize,
    naps: usize,
}

impl TapeScheduler {
    fn new(tape: Vec<u32>) -> Self {
        TapeScheduler {
            tape,
            pos: 0,
            naps: 0,
        }
    }

    fn draw(&mut self) -> u32 {
        let v = self.tape[self.pos % self.tape.len()];
        self.pos += 1;
        v
    }
}

impl OnlineScheduler for TapeScheduler {
    fn name(&self) -> String {
        "tape".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
        if !view.link_idle() || view.pending_tasks().is_empty() {
            return Decision::Idle;
        }
        let choice = self.draw();
        if choice.is_multiple_of(7) && self.naps < 3 {
            self.naps += 1;
            return Decision::WakeAt(view.now() + 0.25);
        }
        let task = view.pending_tasks()[choice as usize % view.pending_tasks().len()];
        let slave = SlaveId(self.draw() as usize % view.num_slaves());
        Decision::Send { task, slave }
    }
}

/// Reroutes the `n`-th Send of the wrapped scheduler to the next slave —
/// the minimal single-decision perturbation.
struct PerturbNthSend {
    inner: TapeScheduler,
    n: usize,
    seen: usize,
}

impl OnlineScheduler for PerturbNthSend {
    fn name(&self) -> String {
        "tape-perturbed".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, e: SchedulerEvent) -> Decision {
        let d = self.inner.on_event(view, e);
        if let Decision::Send { task, slave } = d {
            let k = self.seen;
            self.seen += 1;
            if k == self.n {
                return Decision::Send {
                    task,
                    slave: SlaveId((slave.0 + 1) % view.num_slaves()),
                };
            }
        }
        d
    }
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    // At least two slaves, so a rerouted send is a real change.
    proptest::collection::vec((0.01f64..2.0, 0.1f64..8.0), 2..6).prop_map(|specs| {
        let (c, p): (Vec<f64>, Vec<f64>) = specs.into_iter().unzip();
        Platform::from_vectors(&c, &p)
    })
}

fn arb_tasks() -> impl Strategy<Value = Vec<TaskArrival>> {
    proptest::collection::vec((0.0f64..20.0, 0.9f64..1.1, 0.9f64..1.1), 2..20).prop_map(|ts| {
        ts.into_iter()
            .map(|(r, sc, sp)| TaskArrival {
                release: Time::new(r),
                size_c: sc,
                size_p: sp,
            })
            .collect()
    })
}

fn digest_of<P: mss_sim::Probe>(
    platform: &Platform,
    tasks: &[TaskArrival],
    tape: &[u32],
    extra: &mut P,
) -> (u64, u64) {
    let mut ws = SimWorkspace::new();
    let mut digest = DigestProbe::new();
    let mut probe = (&mut *extra, &mut digest);
    simulate_with_probe_in(
        &mut ws,
        platform,
        tasks,
        &SimConfig::default(),
        &Timeline::EMPTY,
        &mut TapeScheduler::new(tape.to_vec()),
        &mut probe,
    )
    .expect("tape scheduler progresses");
    (digest.digest(), digest.events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Composing the digest probe with a noop or a full metrics probe is
    /// invisible: same digest, same event count, in every combination.
    #[test]
    fn digest_is_invariant_under_probe_composition(
        platform in arb_platform(),
        tasks in arb_tasks(),
        tape in proptest::collection::vec(0u32..1000, 8..64),
    ) {
        let alone = digest_of(&platform, &tasks, &tape, &mut NoopProbe);
        let mut metrics = MetricsProbe::new();
        metrics.preallocate(platform.num_slaves());
        let with_metrics = digest_of(&platform, &tasks, &tape, &mut metrics);
        prop_assert_eq!(alone, with_metrics);

        // And the metrics probe really observed the run it rode along on.
        let run = metrics.finish(0.0);
        prop_assert_eq!(run.tasks, tasks.len() as u64);
    }

    /// Rerouting one send changes the digest, and the ledgers' first
    /// divergence is exactly that decision event.
    #[test]
    fn perturbed_decision_changes_digest_at_the_decision(
        platform in arb_platform(),
        tasks in arb_tasks(),
        tape in proptest::collection::vec(0u32..1000, 8..64),
        nth in 0usize..4,
    ) {
        let run = |perturb: Option<usize>| {
            let mut ws = SimWorkspace::new();
            let mut probe = DigestProbe::with_ledger();
            let cfg = SimConfig::default();
            let r = match perturb {
                None => simulate_with_probe_in(
                    &mut ws, &platform, &tasks, &cfg, &Timeline::EMPTY,
                    &mut TapeScheduler::new(tape.clone()), &mut probe),
                Some(n) => simulate_with_probe_in(
                    &mut ws, &platform, &tasks, &cfg, &Timeline::EMPTY,
                    &mut PerturbNthSend { inner: TapeScheduler::new(tape.clone()), n, seen: 0 },
                    &mut probe),
            };
            r.expect("tape scheduler progresses");
            (probe.digest(), probe.into_ledger())
        };

        let (base_digest, base_ledger) = run(None);
        let (again_digest, again_ledger) = run(None);
        prop_assert_eq!(base_digest, again_digest, "audit is reproducible");
        prop_assert_eq!(base_ledger.len(), again_ledger.len());

        let nth = nth % tasks.len();
        let (perturbed_digest, perturbed_ledger) = run(Some(nth));
        prop_assert_ne!(base_digest, perturbed_digest,
            "a rerouted send must change the digest");

        // First divergent event is the rerouted decision itself.
        let first = base_ledger
            .iter()
            .zip(&perturbed_ledger)
            .position(|(a, b)| (a.kind, a.t_bits, a.a, a.b) != (b.kind, b.t_bits, b.a, b.b))
            .expect("ledgers diverge");
        prop_assert_eq!(base_ledger[first].kind, "decision_send");
        prop_assert_eq!(base_ledger[first].a, perturbed_ledger[first].a,
            "same task, different slave");
        prop_assert_ne!(base_ledger[first].b, perturbed_ledger[first].b);
    }
}
