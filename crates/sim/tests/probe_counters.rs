//! Counters-consistency: the two probe implementations agree with each
//! other and with the trace on a deterministic failure scenario.
//!
//! [`RunCounters`] tallies hook firings; [`TraceRecorder`] turns the same
//! firings into spans and markers. Both observe one run of a fault-aware
//! greedy under scripted slave failures, so every cross-check below is exact:
//! span counts must equal counter totals, markers must equal
//! failure/recovery/loss counts, and the send ledger must balance.
//! (Deliberately *not* asserted: `view_recomputes` — debug builds refresh
//! views for the elision oracle that release builds skip.)

use mss_sim::{
    bag_of_tasks, simulate_with_probe_in, Decision, MarkerKind, OnlineScheduler, Platform,
    PlatformEvent, PlatformEventKind, RunCounters, SchedulerEvent, SimConfig, SimView,
    SimWorkspace, SlaveId, SpanKind, Time, Timeline, TraceRecorder,
};

/// Fault-aware greedy: oldest pending task to the *available* slave with
/// the earliest completion estimate (idles when every slave is down).
struct Greedy;

impl OnlineScheduler for Greedy {
    fn name(&self) -> String {
        "greedy".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
        if !view.link_idle() {
            return Decision::Idle;
        }
        let Some(&task) = view.pending_tasks().first() else {
            return Decision::Idle;
        };
        let Some(best) = view.available_slaves().min_by(|&a, &b| {
            view.completion_estimate(a)
                .partial_cmp(&view.completion_estimate(b))
                .unwrap()
        }) else {
            return Decision::Idle;
        };
        Decision::Send { task, slave: best }
    }

    fn poll_driven(&self) -> bool {
        true
    }
}

#[test]
fn trace_spans_match_counter_totals() {
    let platform = Platform::from_vectors(&[0.2, 0.5, 0.9], &[1.0, 2.0, 3.0]);
    let n = 60;
    let tasks = bag_of_tasks(n);
    let cfg = SimConfig::with_horizon(n);
    // Scripted outage: slave 0 (the fastest) dies mid-run and comes back,
    // so the run exercises failure, task loss/re-release, and recovery.
    let timeline = Timeline::new(vec![
        PlatformEvent {
            time: Time::new(5.0),
            slave: SlaveId(0),
            kind: PlatformEventKind::Fail,
        },
        PlatformEvent {
            time: Time::new(9.0),
            slave: SlaveId(0),
            kind: PlatformEventKind::Recover,
        },
    ]);

    let mut ws = SimWorkspace::new();
    let mut probe = (RunCounters::new(), TraceRecorder::new());
    let trace = simulate_with_probe_in(
        &mut ws,
        &platform,
        &tasks,
        &cfg,
        &timeline,
        &mut Greedy,
        &mut probe,
    )
    .expect("failure scenario completes");
    let (c, mut rec) = probe;
    rec.finalize(rec.end_time());

    // The run actually went through the outage.
    assert_eq!(trace.len(), n);
    assert_eq!(c.failures, 1);
    assert_eq!(c.recoveries, 1);

    // Send ledger balances and matches the recorder span by span.
    assert_eq!(c.sends_started, c.sends_delivered + c.sends_lost);
    let sends = span_count(&rec, SpanKind::Send);
    assert_eq!(sends as u64, c.sends_started);

    // Every task computes to completion exactly once; interrupted computes
    // (the outage's casualties) appear as truncated spans.
    assert_eq!(c.computes_completed, n as u64);
    let computes = rec
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Compute)
        .count() as u64;
    assert_eq!(computes, c.computes_started);
    let completed = rec
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Compute && s.completed)
        .count() as u64;
    assert_eq!(completed, c.computes_completed);

    // Markers mirror the failure counters one to one.
    assert_eq!(marker_count(&rec, MarkerKind::Fail), c.failures);
    assert_eq!(marker_count(&rec, MarkerKind::Recover), c.recoveries);
    assert_eq!(marker_count(&rec, MarkerKind::TaskLost), c.tasks_lost);
    assert_eq!(span_count(&rec, SpanKind::Down) as u64, c.failures);

    // The scheduler heard about the run: every callback was either
    // delivered or (for this poll-driven scheduler) provably elidable.
    assert!(c.callbacks + c.callbacks_elided > 0);
    assert!(c.events() > 3 * n as u64, "outage adds events beyond 3n");
}

fn span_count(rec: &TraceRecorder, kind: SpanKind) -> usize {
    rec.spans.iter().filter(|s| s.kind == kind).count()
}

fn marker_count(rec: &TraceRecorder, kind: MarkerKind) -> u64 {
    rec.markers.iter().filter(|m| m.kind == kind).count() as u64
}
