//! Offline stand-in for `criterion`, API-compatible with the benches in
//! `crates/bench`: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `criterion_group!`,
//! `criterion_main!`.
//!
//! Instead of criterion's statistical machinery it times a warm-up plus a
//! fixed number of samples and prints `min/median/mean` per benchmark —
//! enough to track relative regressions in BENCH_*.json entries.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works.
pub use std::hint::black_box;

/// Measurement throughput annotation (recorded, used for elem/s output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_count` samples of one call each after
    /// one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let extra = match throughput {
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
            format!("  {:.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<50} min {min:>12?}  median {median:>12?}  mean {mean:>12?}{extra}");
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; we honour small numbers to stay quick.
        self.sample_count = n.clamp(1, 1000);
        self
    }

    /// Records the per-iteration throughput for rate output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_count: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 10,
        };
        f(&mut b);
        report(&id.label, &b.samples, None);
        self
    }
}

/// Declares a group-runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
