//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored offline `serde` stand-in (see `vendor/serde`).
//!
//! Supports exactly the shapes this workspace uses: non-generic named-field
//! structs, tuple (newtype) structs, unit structs, and enums whose variants
//! are unit, newtype, or struct-like. The generated code targets the
//! value-tree model of `::serde::Value` rather than real serde's
//! serializer/deserializer traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skips `#[...]` attributes (incl. doc comments) and visibility modifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            // `#` then `[...]`
            i += 2;
            continue;
        }
        if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            // optional `(crate)` etc.
            if i < tokens.len() {
                if let TokenTree::Group(g) = &tokens[i] {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            continue;
        }
        return i;
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive stub: expected field name, got {:?}",
                tokens[i]
            );
        };
        fields.push(name.to_string());
        i += 1;
        assert!(is_punct(&tokens[i], ':'), "serde_derive stub: expected ':'");
        i += 1;
        // Skip the type: consume until a top-level `,` (angle brackets need
        // depth tracking because `<` / `>` are plain puncts).
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts tuple-struct fields (top-level comma-separated types).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_trailing = false;
    for (k, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if k + 1 == tokens.len() {
                    saw_trailing = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing;
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive stub: expected variant name, got {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let fields = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let f = Fields::Named(parse_named_fields(g));
                    i += 1;
                    f
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let f = Fields::Tuple(count_tuple_fields(g));
                    i += 1;
                    f
                }
                _ => Fields::Unit,
            }
        } else {
            Fields::Unit
        };
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // the comma
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive stub: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive stub: generic types are not supported ({name})");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde_derive stub: expected enum body");
            };
            Item::Enum {
                name,
                variants: parse_variants(g),
            }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!(
                        "::serde::Value::Object(::std::vec![{}])",
                        entries.join(", ")
                    )
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())")
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Array(::std::vec![{}])\
                                 )])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(\
                                 ::std::vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Object(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::field(__v, \"{f}\")?)\
                                 .map_err(|e| e.at_field(\"{name}.{f}\"))?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| {
                            format!("::serde::Deserialize::from_value(::serde::index(__v, {k})?)?")
                        })
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn})")
                })
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?))"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::index(__inner, {k})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({}))",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(__inner, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                                inits.join(", ")
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(__v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{\n\
                     match __v {{\n\
                       ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                       }},\n\
                       ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__key, __inner) = &__entries[0];\n\
                         match __key.as_str() {{\n\
                           {keyed}\n\
                           __other => ::std::result::Result::Err(::serde::Error::custom(\
                               format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                       }}\n\
                       _ => ::std::result::Result::Err(::serde::Error::custom(\
                           \"expected string or single-key object for enum {name}\")),\n\
                     }}\n\
                   }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    unit_arms.join(",\n") + ","
                },
                keyed = if keyed_arms.is_empty() {
                    String::new()
                } else {
                    keyed_arms.join(",\n") + ","
                },
            )
        }
    }
}

/// Derives the vendored `serde::Serialize` (value-tree serialization).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` (value-tree deserialization).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
