//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` bindings;
//! * [`Strategy`] implemented for numeric ranges and strategy tuples, with
//!   `prop_map` / `prop_filter`;
//! * `proptest::collection::vec`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is **no shrinking** — a failing case panics
//! with the drawn values' debug output instead. Cases are drawn from a
//! deterministic RNG seeded from the test name, so failures reproduce.

use std::ops::{Range, RangeInclusive};

pub use rand as prop_rand;

/// Runner configuration and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl std::fmt::Display) -> Self {
            TestCaseError(msg.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Builds the deterministic per-test RNG (FNV-1a over the test name).
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// A recipe for generating values. `sample` returns `None` when a
    /// filter rejected the draw (the runner retries).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Option<Self::Value>;

        /// Maps generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing the predicate; the `_reason` is only used
        /// in diagnostics by real proptest and ignored here.
        fn prop_filter<R, F: Fn(&Self::Value) -> bool>(self, _reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            self.inner.sample(rng).filter(|v| (self.f)(v))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $i:tt),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    Some(($(self.$i.sample(rng)?,)+))
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    );

    /// Uniform choice among boxed strategies of one value type (the
    /// stand-in behind [`prop_oneof!`](crate::prop_oneof); the real crate's
    /// weighted forms are not supported).
    pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> Option<T> {
            use rand::Rng as _;
            let pick = rng.gen_range(0..self.0.len());
            self.0[pick].sample(rng)
        }
    }
}

use rand::Rng as _;
use strategy::Strategy;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option<T>` strategies, mirroring `proptest::option`.
pub mod option {
    use super::strategy::Strategy;
    use rand::Rng as _;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    /// Produces `None` half the time and `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Option<Option<S::Value>> {
            if rng.gen_range(0..2) == 0 {
                Some(None)
            } else {
                self.0.sample(rng).map(Some)
            }
        }
    }
}

/// Uniform choice among strategies producing the same type (unweighted
/// subset of the real macro).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($s)),+];
        $crate::strategy::Union(options)
    }};
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut case = 0u32;
            let mut rejects = 0u32;
            while case < config.cases {
                $(
                    let $arg = match $crate::strategy::Strategy::sample(&{ $strat }, &mut rng) {
                        Some(v) => v,
                        None => {
                            rejects += 1;
                            assert!(
                                rejects < 100_000,
                                "proptest stub: too many filter rejections in {}",
                                stringify!($name)
                            );
                            continue;
                        }
                    };
                )*
                case += 1;
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: {:?} == {:?}", __l, __r),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}: {:?} != {:?}", format!($($fmt)*), __l, __r),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: {:?} != {:?}", __l, __r),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}: both {:?}", format!($($fmt)*), __l),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(x in 0.0f64..1.0, pair in (1usize..4, 10u32..20)) {
            let (a, b) = pair;
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..4).contains(&a));
            prop_assert!((10..20).contains(&b), "b = {}", b);
        }

        #[test]
        fn map_filter_vec(v in crate::collection::vec((0i64..100).prop_filter("even", |n| n % 2 == 0).prop_map(|n| n * 2), 1..8)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|n| n % 4 == 0));
        }
    }
}
