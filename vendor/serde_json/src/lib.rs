//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde::Value` tree as JSON.
//!
//! Floats are rendered with Rust's `Display`, which emits the shortest
//! string that round-trips to the same bits — the workspace's
//! trace/report round-trip tests rely on that exactness.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes compact JSON into an [`std::io::Write`] sink (same API shape
/// as the real `serde_json::to_writer`). Appending to a reused `Vec<u8>`
/// buffer avoids the per-value `String` allocation of [`to_string`].
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    writer: W,
    value: &T,
) -> Result<(), Error> {
    struct IoFmt<W: std::io::Write> {
        writer: W,
        error: Option<std::io::Error>,
    }
    impl<W: std::io::Write> std::fmt::Write for IoFmt<W> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.writer.write_all(s.as_bytes()).map_err(|e| {
                self.error = Some(e);
                std::fmt::Error
            })
        }
    }
    let mut out = IoFmt {
        writer,
        error: None,
    };
    write_value(&mut out, &value.to_value(), None, 0);
    match out.error {
        Some(e) => Err(Error::custom(format!("io error: {e}"))),
        None => Ok(()),
    }
}

/// Parses JSON and deserializes into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parses JSON into a raw [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

fn write_value<W: std::fmt::Write>(out: &mut W, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => {
            let _ = out.write_str("null");
        }
        Value::Bool(b) => {
            let _ = out.write_str(if *b { "true" } else { "false" });
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
                // Keep a float marker so integral floats parse back as F64.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = out.write_str(".0");
                }
            } else {
                let _ = out.write_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                let _ = out.write_str("[]");
                return;
            }
            let _ = out.write_char('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    let _ = out.write_char(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            let _ = out.write_char(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                let _ = out.write_str("{}");
                return;
            }
            let _ = out.write_char('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    let _ = out.write_char(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                let _ = out.write_char(':');
                if indent.is_some() {
                    let _ = out.write_char(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            let _ = out.write_char('}');
        }
    }
}

fn newline_indent<W: std::fmt::Write>(out: &mut W, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        let _ = out.write_char('\n');
        let _ = out.write_str(&" ".repeat(w * depth));
    }
}

fn write_string<W: std::fmt::Write>(out: &mut W, s: &str) {
    let _ = out.write_char('"');
    for c in s.chars() {
        match c {
            '"' => {
                let _ = out.write_str("\\\"");
            }
            '\\' => {
                let _ = out.write_str("\\\\");
            }
            '\n' => {
                let _ = out.write_str("\\n");
            }
            '\r' => {
                let _ = out.write_str("\\r");
            }
            '\t' => {
                let _ = out.write_str("\\t");
            }
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => {
                let _ = out.write_char(c);
            }
        }
    }
    let _ = out.write_char('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::custom("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_floats_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 123456.789, -0.0, 1e-9, 80f64.sqrt()] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = to_string(&4.0f64).unwrap();
        assert_eq!(s, "4.0");
        assert_eq!(parse_value(&s).unwrap(), Value::F64(4.0));
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&"a\"b\\c\nd".to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn nested_value_round_trip() {
        let v = Value::Object(vec![
            (
                "xs".into(),
                Value::Array(vec![Value::U64(1), Value::F64(2.5)]),
            ),
            ("s".into(), Value::Str("hi".into())),
            ("n".into(), Value::Null),
            ("neg".into(), Value::I64(-7)),
        ]);
        let compact = {
            let mut out = String::new();
            super::write_value(&mut out, &v, None, 0);
            out
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut out = String::new();
            super::write_value(&mut out, &v, Some(2), 0);
            out
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }
}
