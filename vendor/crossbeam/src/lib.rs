//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! `crossbeam::channel::{bounded, unbounded, Sender, Receiver}` with
//! `send`, `recv`, `try_recv`, and `recv_timeout`, all clonable (MPMC).
//!
//! Implemented as a `Mutex<VecDeque>` + two `Condvar`s. Throughput is far
//! below real crossbeam's lock-free channels, which is fine for the
//! cluster executor's per-task message rates.

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel empty right now.
        Empty,
        /// All senders gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with nothing received.
        Timeout,
        /// All senders gone and the queue is drained.
        Disconnected,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (blocks while a bounded channel is full).
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(item));
                }
                match self.shared.capacity {
                    Some(cap) if inner.items.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.items.push_back(item);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Bounded MPMC channel (capacity 0 behaves as capacity 1 here; the
    /// workspace never uses rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = bounded::<u32>(4);
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx2, rx2) = unbounded::<u32>();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn try_and_timeout_variants() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        tx.send(10).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(10));
    }
}
