//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! `crossbeam::channel::{bounded, unbounded, Sender, Receiver}` with
//! `send`, `recv`, `try_recv`, and `recv_timeout`, all clonable (MPMC),
//! and `crossbeam::deque::{Worker, Stealer, Steal}` — the work-stealing
//! deque the sweep executor schedules batches with.
//!
//! Both are implemented over `Mutex`ed queues (`VecDeque` + `Condvar`s for
//! the channel, a bare `VecDeque` for the deque). Throughput is far below
//! real crossbeam's lock-free structures, which is fine at the workspace's
//! granularities: the cluster executor moves per-task messages and the
//! sweep executor moves whole simulation batches, so queue operations are
//! nowhere near the hot path.

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel empty right now.
        Empty,
        /// All senders gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with nothing received.
        Timeout,
        /// All senders gone and the queue is drained.
        Disconnected,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (blocks while a bounded channel is full).
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(item));
                }
                match self.shared.capacity {
                    Some(cap) if inner.items.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.items.push_back(item);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Bounded MPMC channel (capacity 0 behaves as capacity 1 here; the
    /// workspace never uses rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }
}

/// Work-stealing deques.
///
/// API-compatible subset of `crossbeam-deque`: each worker thread owns a
/// [`deque::Worker`] it pushes to and pops from; every other thread holds a
/// clonable [`deque::Stealer`] handle onto it and takes work from the
/// opposite end when its own deque runs dry. The stand-in serves the owner
/// from the front (FIFO flavor, like `Worker::new_fifo`) and thieves from
/// the back, so an owner seeded largest-first keeps its costliest items
/// while thieves pick up the cheap tail.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The owner's handle of a work-stealing deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A thief's handle onto some worker's deque; clonable.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// Outcome of a [`Stealer::steal`] attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// Took one item.
        Success(T),
        /// Lost a race; try again. (The mutex-backed stand-in never
        /// returns this, but callers must handle it for API parity with
        /// real crossbeam.)
        Retry,
    }

    impl<T> Steal<T> {
        /// `Some(item)` on success.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(item) => Some(item),
                _ => None,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Worker<T> {
        /// A new empty FIFO deque (owner pops the front).
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes an item onto the back of the deque.
        pub fn push(&self, item: T) {
            self.queue.lock().unwrap().push_back(item);
        }

        /// Pops the owner's next item from the front.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_front()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }

        /// A new stealer handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one item from the back of the deque.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_back() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use super::deque::{Steal, Worker};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = bounded::<u32>(4);
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx2, rx2) = unbounded::<u32>();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn deque_owner_fifo_thief_from_back() {
        let w = Worker::new_fifo();
        for i in 0..4 {
            w.push(i);
        }
        let s = w.stealer();
        assert_eq!(w.pop(), Some(0), "owner takes the front");
        assert_eq!(s.steal(), Steal::Success(3), "thief takes the back");
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
        assert!(w.is_empty() && s.is_empty());
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<u32>::Empty.success(), None);
    }

    #[test]
    fn deque_steals_across_threads_drain_everything() {
        let w = Worker::new_fifo();
        let total = 1000u32;
        for i in 0..total {
            w.push(i);
        }
        let stealers: Vec<_> = (0..3).map(|_| w.stealer()).collect();
        let taken: Vec<u32> = std::thread::scope(|scope| {
            let thieves: Vec<_> = stealers
                .iter()
                .map(|s| {
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Steal::Success(x) = s.steal() {
                            got.push(x);
                        }
                        got
                    })
                })
                .collect();
            let mut got = Vec::new();
            while let Some(x) = w.pop() {
                got.push(x);
            }
            for t in thieves {
                got.extend(t.join().unwrap());
            }
            got
        });
        let mut sorted = taken;
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..total).collect::<Vec<_>>(),
            "each item exactly once"
        );
    }

    #[test]
    fn try_and_timeout_variants() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        tx.send(10).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(10));
    }
}
