//! Offline stand-in for the `rand` crate, covering the API surface this
//! workspace uses: `StdRng::seed_from_u64`, and `Rng::gen_range` over
//! half-open and inclusive ranges of floats and integers.
//!
//! The engine is xoshiro256++ seeded through splitmix64 — high-quality and
//! fully deterministic, but its streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`. All experiments in this repository derive their
//! statistics from seeds generated here, so only internal reproducibility
//! matters (and is covered by tests).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructor, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// A range that can be sampled (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = rng.gen_f64();
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        let u = rng.gen_f64();
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

// i128 ranges (used by the exact-arithmetic property tests) need a wider
// intermediate; keep them separate from the macro above.
impl SampleRange<i128> for Range<i128> {
    fn sample_from<R: RngCore + Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "gen_range: empty i128 range");
        let span = (self.end - self.start) as u128;
        let draw = (rng.next_u64() as u128) % span;
        self.start + draw as i128
    }
}

impl SampleRange<i128> for RangeInclusive<i128> {
    fn sample_from<R: RngCore + Sized>(self, rng: &mut R) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty i128 range");
        let span = (hi - lo) as u128 + 1;
        let draw = (rng.next_u64() as u128) % span;
        lo + draw as i128
    }
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(
            StdRng::seed_from_u64(42).gen_range(0u64..u64::MAX),
            c.gen_range(0u64..u64::MAX)
        );
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(0.01f64..=1.0);
            assert!((0.01..=1.0).contains(&f));
            let i = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&i));
            let n = rng.gen_range(-200i128..=200);
            assert!((-200..=200).contains(&n));
        }
    }

    #[test]
    fn covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
