//! Offline stand-in for `serde`, sufficient for this workspace.
//!
//! The container can't reach crates.io, so this crate (plus
//! `vendor/serde_derive` and `vendor/serde_json`) provides the API surface
//! the code uses: `#[derive(serde::Serialize, serde::Deserialize)]` on
//! non-generic structs and enums, and JSON round-trips through
//! `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! Unlike real serde's visitor design, everything funnels through a
//! [`Value`] tree. Numeric fidelity matters for the round-trip tests, so
//! integers keep 64-bit exactness and floats are rendered via Rust's
//! shortest-round-trip `Display`.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (exact up to `u64::MAX`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved (deterministic output).
    Object(Vec<(String, Value)>),
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Adds field context to an error (used by derived impls).
    pub fn at_field(self, field: &str) -> Self {
        Error(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

static NULL: Value = Value::Null;

/// Looks up `name` in an object value; absent fields read as `Null` so that
/// `Option<T>` fields tolerate omission.
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
    match v {
        Value::Object(entries) => Ok(entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)),
        other => Err(Error::custom(format!(
            "expected object with field `{name}`, got {}",
            kind(other)
        ))),
    }
}

/// Indexes into an array value.
pub fn index(v: &Value, i: usize) -> Result<&Value, Error> {
    match v {
        Value::Array(items) => items
            .get(i)
            .ok_or_else(|| Error::custom(format!("array index {i} out of bounds"))),
        other => Err(Error::custom(format!(
            "expected array, got {}",
            kind(other)
        ))),
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------- primitives ----

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {}", kind(other)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected integer, got {}", kind(other)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                kind(other)
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {}", kind(other)))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                kind(other)
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------- containers ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                kind(other)
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+ ; $n:expr)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $n => {
                        Ok(($($t::from_value(&items[$i])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {}-tuple array, got {}", $n, kind(other)))),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}
