//! Replayability and observability guarantees, exercised via the facade:
//! every experiment in this repository is re-runnable bit-for-bit, and
//! every trace can be inspected (Gantt, statistics) and serialized.

use master_slave_sched::core::{simulate, Algorithm, SimConfig};
use master_slave_sched::sim::{render_gantt, trace_stats, TIME_EPS};
use master_slave_sched::workload::{
    ArrivalProcess, HeterogeneityAxis, HeterogeneityFamily, Perturbation, PlatformSampler,
};
use mss_core::PlatformClass;

#[test]
fn end_to_end_replay_is_bitwise_identical() {
    let sampler = PlatformSampler::default();
    let run = || {
        let platform = &sampler.sample_many(PlatformClass::Heterogeneous, 1, 77)[0];
        let tasks = ArrivalProcess::Poisson { load: 0.9 }.generate(120, platform, 13);
        let tasks = Perturbation::matrix(0.1).apply(&tasks, 99);
        simulate(
            platform,
            &tasks,
            &SimConfig::with_horizon(120),
            &mut Algorithm::Sljfwc.build(),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "whole pipeline must replay identically");
}

#[test]
fn traces_survive_json_round_trips() {
    let platform = PlatformSampler::default()
        .sample_many(PlatformClass::CommHomogeneous, 1, 5)
        .remove(0);
    let tasks = ArrivalProcess::AllAtZero.generate(30, &platform, 5);
    let trace = simulate(
        &platform,
        &tasks,
        &SimConfig::with_horizon(30),
        &mut Algorithm::ListScheduling.build(),
    )
    .unwrap();
    let json = serde_json::to_string(&trace).unwrap();
    let parsed: master_slave_sched::core::Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed, trace);
    assert!((parsed.makespan() - trace.makespan()).abs() <= TIME_EPS);
}

#[test]
fn gantt_and_stats_agree_with_the_trace() {
    let family = HeterogeneityFamily::paper_ranges(4, 21);
    let platform = family.platform(HeterogeneityAxis::Both, 1.0);
    let tasks = ArrivalProcess::AllAtZero.generate(25, &platform, 3);
    let trace = simulate(
        &platform,
        &tasks,
        &SimConfig::with_horizon(25),
        &mut Algorithm::ListScheduling.build(),
    )
    .unwrap();

    let stats = trace_stats(&trace, &platform);
    assert!((stats.makespan - trace.makespan()).abs() < 1e-12);
    // Conservation: total computed seconds equal the sum of p_j over tasks.
    let total_busy: f64 = stats.slaves.iter().map(|s| s.busy).sum();
    let expected: f64 = trace
        .records()
        .iter()
        .map(|r| platform.p(r.slave) * r.size_p)
        .sum();
    assert!((total_busy - expected).abs() < 1e-6);
    // Task conservation.
    let total_tasks: usize = stats.slaves.iter().map(|s| s.tasks).sum();
    assert_eq!(total_tasks, trace.len());
    // Flow decomposition: flow = master wait + send + slave wait + compute.
    let mean_send: f64 = trace
        .records()
        .iter()
        .map(|r| r.send_end - r.send_start)
        .sum::<f64>()
        / trace.len() as f64;
    let mean_comp: f64 = trace
        .records()
        .iter()
        .map(|r| r.compute_end - r.compute_start)
        .sum::<f64>()
        / trace.len() as f64;
    let recomposed = stats.mean_master_wait + mean_send + stats.mean_slave_wait + mean_comp;
    assert!((recomposed - stats.mean_flow).abs() < 1e-9);

    // The Gantt chart covers every slave that did work.
    let chart = render_gantt(&trace, &platform, 60);
    for (j, s) in stats.slaves.iter().enumerate() {
        if s.tasks > 0 {
            let row = chart.lines().nth(1 + j).unwrap();
            assert!(
                row.contains('#') || row.contains('+'),
                "P{} did work but its row is empty:\n{chart}",
                j + 1
            );
        }
    }
}

#[test]
fn horizon_hint_does_not_change_bag_runs_for_planned_schedulers() {
    // For a bag released at t = 0 the first-decision released count equals
    // the horizon, so SLJF plans identically with or without the hint.
    let platform = PlatformSampler::default()
        .sample_many(PlatformClass::CommHomogeneous, 1, 9)
        .remove(0);
    let tasks = ArrivalProcess::AllAtZero.generate(60, &platform, 9);
    let with_hint = simulate(
        &platform,
        &tasks,
        &SimConfig::with_horizon(60),
        &mut Algorithm::Sljf.build(),
    )
    .unwrap();
    let without_hint = simulate(
        &platform,
        &tasks,
        &SimConfig::default(),
        &mut Algorithm::Sljf.build(),
    )
    .unwrap();
    assert_eq!(with_hint, without_hint);
}
