//! Cross-crate integration: the full pipeline from exact theorem games to
//! the threaded cluster, exercised through the facade crate.

use master_slave_sched::adversary::{play_all, TheoremId};
use master_slave_sched::cluster::{execute, validate_loose, ClusterConfig};
use master_slave_sched::core::{
    bag_of_tasks, simulate, validate, Algorithm, Objective, Platform, SimConfig,
};
use master_slave_sched::exact::Surd;
use master_slave_sched::lab::{table1, ExperimentScale};
use master_slave_sched::opt::schedule::{Goal, Instance};
use master_slave_sched::workload::{ArrivalProcess, PlatformSampler};
use mss_core::PlatformClass;

#[test]
fn table1_report_is_fully_verified() {
    let report = table1::run();
    assert_eq!(report.cells.len(), 9);
    assert!(report.all_verified());
    // The minimum measured ratio never undercuts the certified threshold.
    for cell in &report.cells {
        assert!(
            cell.min_measured >= cell.certified * (1.0 - 1e-9),
            "{}: min {} < certified {}",
            cell.theorem,
            cell.min_measured,
            cell.certified
        );
    }
    // T1's minimum is exactly the bound (LS attains it).
    let t1 = report.cell(TheoremId::T1);
    assert!((t1.min_measured - 1.25).abs() < 1e-9);
}

#[test]
fn adversary_games_against_custom_scheduler() {
    // A user-defined scheduler (always-cheapest-link) also loses all games.
    use master_slave_sched::core::{Decision, OnlineScheduler, SchedulerEvent, SimView};
    struct CheapestLink;
    impl OnlineScheduler for CheapestLink {
        fn name(&self) -> String {
            "cheapest-link".into()
        }
        fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            match (view.link_idle(), view.pending_tasks().first()) {
                (true, Some(&task)) => {
                    let slave = view
                        .platform()
                        .slave_ids()
                        .min_by(|&a, &b| {
                            view.platform()
                                .c(a)
                                .partial_cmp(&view.platform().c(b))
                                .unwrap()
                        })
                        .unwrap();
                    Decision::Send { task, slave }
                }
                _ => Decision::Idle,
            }
        }
    }
    let factory = || -> Box<dyn OnlineScheduler> { Box::new(CheapestLink) };
    for result in play_all(&factory) {
        assert!(
            result.holds(),
            "{}: {} < {}",
            result.info.id,
            result.ratio,
            result.info.certified.to_f64()
        );
    }
}

#[test]
fn des_and_cluster_agree_end_to_end() {
    let platform = Platform::from_vectors(&[0.5, 0.5], &[1.0, 6.0]);
    let tasks = bag_of_tasks(8);
    let des = simulate(
        &platform,
        &tasks,
        &SimConfig::with_horizon(8),
        &mut Algorithm::Sljf.build(),
    )
    .unwrap();
    assert!(validate(&des, &platform).is_empty());

    let run = execute(
        &platform,
        &tasks,
        &ClusterConfig {
            time_scale: 0.01,
            matrix_dim: 24,
            horizon_hint: Some(8),
        },
        &mut Algorithm::Sljf.build(),
    )
    .unwrap();
    assert!(validate_loose(&run.trace, &platform, 0.2).is_empty());
    // SLJF's plan is timing-independent: assignments must match exactly.
    for i in 0..8 {
        assert_eq!(
            des.record(mss_core::TaskId(i)).slave,
            run.trace.record(mss_core::TaskId(i)).slave
        );
    }
}

#[test]
fn exact_and_float_optimizers_agree() {
    let f = Instance {
        c: vec![1.0, 1.0],
        p: vec![3.0, 7.0],
        r: vec![0.0, 1.0, 2.0],
    };
    let e = Instance {
        c: vec![Surd::ONE, Surd::ONE],
        p: vec![Surd::from_int(3), Surd::from_int(7)],
        r: vec![Surd::ZERO, Surd::ONE, Surd::from_int(2)],
    };
    for goal in [Goal::Makespan, Goal::MaxFlow, Goal::SumFlow] {
        let vf = master_slave_sched::opt::best_f64(&f, goal).value;
        let ve = master_slave_sched::opt::best_exact(&e, goal).value.to_f64();
        assert!((vf - ve).abs() < 1e-9, "{goal:?}: {vf} vs {ve}");
    }
}

#[test]
fn lab_artifacts_round_trip_through_json() {
    let scale = ExperimentScale {
        platforms: 2,
        tasks: 60,
        seed: 1,
    };
    let panel = master_slave_sched::lab::fig1::run_panel(
        PlatformClass::Heterogeneous,
        scale,
        ArrivalProcess::AllAtZero,
    );
    let path = panel.write_artifacts();
    assert!(path.exists());
    let json_path = path.with_extension("json");
    let body = std::fs::read_to_string(json_path).unwrap();
    let parsed: master_slave_sched::lab::fig1::Fig1Panel = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed.rows.len(), 7);
    for (a, b) in parsed.rows.iter().zip(&panel.rows) {
        assert_eq!(a.algorithm, b.algorithm);
        assert!((a.normalized[0] - b.normalized[0]).abs() < 1e-12);
    }
}

#[test]
fn workload_to_simulation_pipeline() {
    // Sample → generate → simulate → evaluate, for every class and
    // algorithm, all through public APIs.
    let sampler = PlatformSampler {
        num_slaves: 4,
        ..PlatformSampler::default()
    };
    for class in [
        PlatformClass::Homogeneous,
        PlatformClass::CommHomogeneous,
        PlatformClass::CompHomogeneous,
        PlatformClass::Heterogeneous,
    ] {
        let platform = &sampler.sample_many(class, 1, 9)[0];
        let tasks = ArrivalProcess::Poisson { load: 0.8 }.generate(40, platform, 3);
        for a in Algorithm::ALL {
            let trace = simulate(
                platform,
                &tasks,
                &SimConfig::with_horizon(40),
                &mut a.build(),
            )
            .unwrap();
            assert!(validate(&trace, platform).is_empty());
            assert!(Objective::SumFlow.evaluate(&trace) > 0.0);
        }
    }
}
