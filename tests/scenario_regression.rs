//! Regression guards for the dynamic-platform subsystem: the static model
//! must be *byte-identical* to the pre-scenario engine, and dynamic runs
//! must honor the same determinism contract the static engine guarantees.

use master_slave_sched::core::{
    simulate, simulate_with_events, Algorithm, Redispatch, SimConfig, Timeline,
};
use master_slave_sched::scenario::{GeneratorSpec, ScenarioSpec};
use master_slave_sched::workload::{ArrivalProcess, PlatformSampler};
use mss_core::PlatformClass;
use mss_lab::fig1;
use mss_lab::report::ExperimentScale;
use mss_sweep::{Cell, ScenarioCell, SweepConfig};

/// Every algorithm, every platform class: the empty timeline and the
/// compiled static scenario replay the static engine bit for bit.
#[test]
fn static_scenario_traces_are_byte_identical() {
    let sampler = PlatformSampler::default();
    let empty = ScenarioSpec::static_spec();
    for class in [
        PlatformClass::Homogeneous,
        PlatformClass::CommHomogeneous,
        PlatformClass::CompHomogeneous,
        PlatformClass::Heterogeneous,
    ] {
        let platform = &sampler.sample_many(class, 1, 23)[0];
        let tasks = ArrivalProcess::Poisson { load: 0.9 }.generate(80, platform, 31);
        let cfg = SimConfig::with_horizon(tasks.len());
        let compiled = empty.compile(platform.num_slaves()).unwrap();
        assert_eq!(compiled, Timeline::EMPTY);
        for a in Algorithm::ALL {
            let reference = simulate(platform, &tasks, &cfg, &mut a.build()).unwrap();
            let via_events =
                simulate_with_events(platform, &tasks, &cfg, &compiled, &mut a.build()).unwrap();
            assert_eq!(reference, via_events, "{a} on {class}");
            // The fault-aware wrapper is the identity on static platforms.
            let wrapped =
                simulate_with_events(platform, &tasks, &cfg, &compiled, &mut Redispatch::wrap(a))
                    .unwrap();
            assert_eq!(reference, wrapped, "{a}+RD on {class}");
        }
    }
}

/// The Figure 1 grid run through static-scenario cells produces the same
/// metrics as the historical cells — the fig1/fig2/table1 outputs cannot
/// move.
#[test]
fn fig1_cells_are_unmoved_by_the_scenario_axis() {
    let cells = fig1::panel_cells(
        PlatformClass::Heterogeneous,
        ExperimentScale::quick(),
        ArrivalProcess::AllAtZero,
    );
    for cell in cells {
        let reference = cell.run();
        let mut with_static = cell.clone();
        with_static.scenario = Some(ScenarioCell {
            spec: ScenarioSpec::static_spec(),
            fault_aware: true,
        });
        assert_eq!(with_static.run(), reference, "{}", cell.group_label());
    }
}

/// A fixed `(seed, ScenarioSpec)` yields bit-identical metrics and
/// aggregates at any thread count, and the whole dynamic pipeline replays.
#[test]
fn dynamic_runs_replay_and_are_thread_count_invariant() {
    let scenario = ScenarioSpec {
        name: Some("guard".into()),
        seed: 77,
        horizon: Some(600.0),
        min_up: Some(1),
        events: None,
        generators: Some(vec![
            GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(80.0),
                repair_mean: Some(12.0),
                ..GeneratorSpec::default()
            },
            GeneratorSpec {
                kind: "link-drift".into(),
                step: Some(50.0),
                sigma: Some(0.3),
                ..GeneratorSpec::default()
            },
        ]),
    };
    let cells: Vec<Cell> = Algorithm::ALL
        .iter()
        .map(|&algorithm| Cell {
            platform: mss_sweep::PlatformCell::Class {
                class: PlatformClass::Heterogeneous,
                slaves: 5,
                seed: 42,
                index: 0,
            },
            arrival: ArrivalProcess::UniformStream { load: 0.9 },
            perturbation: None,
            scenario: Some(ScenarioCell {
                spec: scenario.clone(),
                fault_aware: true,
            }),
            tasks: 60,
            algorithm,
            information: mss_core::InfoTier::Clairvoyant,
            replicate: 0,
            task_seed: 9,
        })
        .collect();

    let run = |threads: usize| {
        mss_sweep::run_cells(
            cells.clone(),
            &SweepConfig {
                threads,
                cache_dir: None,
                ..SweepConfig::default()
            },
        )
        .metrics
    };
    let serial = run(1);
    assert_eq!(serial, run(4));
    assert_eq!(serial, run(16));
    // And re-running serially replays bit-for-bit.
    assert_eq!(serial, run(1));
}
