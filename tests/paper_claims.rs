//! End-to-end checks of the paper's headline experimental claims (§4.3),
//! run through the public facade at reduced scale (same shapes, fast).

use master_slave_sched::core::{Algorithm, PlatformClass};
use master_slave_sched::lab::{fig1, fig2, ExperimentScale};
use master_slave_sched::workload::{ArrivalProcess, Perturbation};

fn scale() -> ExperimentScale {
    // 6 platforms rather than the paper's 10: enough to stabilize the
    // averaged claims under the vendored RNG stream while staying fast.
    ExperimentScale {
        platforms: 6,
        tasks: 150,
        seed: 42,
    }
}

#[test]
fn fig1a_statics_equal_and_beat_srpt() {
    // "all static algorithms perform equally well on such platforms, and
    // exhibit better performance than the dynamic heuristic SRPT."
    let panel = fig1::run_panel(
        PlatformClass::Homogeneous,
        scale(),
        ArrivalProcess::AllAtZero,
    );
    let statics = [
        Algorithm::ListScheduling,
        Algorithm::RoundRobin,
        Algorithm::RoundRobinComm,
        Algorithm::RoundRobinProc,
        Algorithm::Sljf,
        Algorithm::Sljfwc,
    ];
    for a in statics {
        let n = panel.normalized(a);
        assert!(
            n[0] < 1.0 - 0.01,
            "{a}: normalized makespan {} should clearly beat SRPT",
            n[0]
        );
    }
    // "equally well": the statics' spread is small next to their gap to SRPT.
    let makespans: Vec<f64> = statics.iter().map(|&a| panel.normalized(a)[0]).collect();
    let min = makespans.iter().copied().fold(f64::INFINITY, f64::min);
    let max = makespans.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max - min < 1.0 - max,
        "statics spread [{min}, {max}] should be tighter than their lead over SRPT"
    );
}

#[test]
fn fig1b_rrc_is_the_outlier() {
    // "RRC, which does not take processor heterogeneity into account,
    // performs significantly worse than the others."
    let panel = fig1::run_panel(
        PlatformClass::CommHomogeneous,
        scale(),
        ArrivalProcess::AllAtZero,
    );
    let rrc = panel.normalized(Algorithm::RoundRobinComm)[0];
    for a in [
        Algorithm::ListScheduling,
        Algorithm::RoundRobin,
        Algorithm::RoundRobinProc,
        Algorithm::Sljf,
        Algorithm::Sljfwc,
    ] {
        assert!(
            panel.normalized(a)[0] < rrc,
            "{a} ({}) should beat RRC ({rrc}) on comm-homogeneous platforms",
            panel.normalized(a)[0]
        );
    }
}

#[test]
fn fig1b_sljf_best_for_makespan() {
    // "we also observe that SLJF is the best approach for makespan
    // minimization" (communication-homogeneous platforms).
    let panel = fig1::run_panel(
        PlatformClass::CommHomogeneous,
        scale(),
        ArrivalProcess::AllAtZero,
    );
    let sljf = panel.normalized(Algorithm::Sljf)[0];
    for a in Algorithm::ALL {
        assert!(
            sljf <= panel.normalized(a)[0] + 0.02,
            "SLJF ({sljf}) should be at or near the top; {a} is at {}",
            panel.normalized(a)[0]
        );
    }
}

#[test]
fn fig1c_rrp_and_sljf_are_the_outliers() {
    // "RRP and SLJF, which do not take communication heterogeneity into
    // account, perform significantly worse than the others."
    let panel = fig1::run_panel(
        PlatformClass::CompHomogeneous,
        scale(),
        ArrivalProcess::AllAtZero,
    );
    let rrp = panel.normalized(Algorithm::RoundRobinProc)[0];
    let comm_aware_best = [
        Algorithm::ListScheduling,
        Algorithm::RoundRobinComm,
        Algorithm::Sljfwc,
    ]
    .iter()
    .map(|&a| panel.normalized(a)[0])
    .fold(f64::INFINITY, f64::min);
    assert!(
        rrp > comm_aware_best,
        "RRP ({rrp}) should trail the communication-aware heuristics ({comm_aware_best})"
    );
}

#[test]
fn fig1c_sljfwc_best_for_makespan() {
    // "we also observe that SLJFWC is the best approach for makespan
    // minimization" (computation-homogeneous platforms).
    let panel = fig1::run_panel(
        PlatformClass::CompHomogeneous,
        scale(),
        ArrivalProcess::AllAtZero,
    );
    let sljfwc = panel.normalized(Algorithm::Sljfwc)[0];
    for a in Algorithm::ALL {
        assert!(
            sljfwc <= panel.normalized(a)[0] + 0.02,
            "SLJFWC ({sljfwc}) should be at or near the top; {a} is at {}",
            panel.normalized(a)[0]
        );
    }
}

#[test]
fn fig1d_communication_aware_heuristics_lead() {
    // "the best algorithms are LS and SLJFWC. Moreover, we see that
    // algorithms taking communication delays into account actually perform
    // better."
    let panel = fig1::run_panel(
        PlatformClass::Heterogeneous,
        scale(),
        ArrivalProcess::AllAtZero,
    );
    let ls = panel.normalized(Algorithm::ListScheduling)[0];
    let sljfwc = panel.normalized(Algorithm::Sljfwc)[0];
    let best_pair = ls.min(sljfwc);
    // The pair must beat the dynamic baseline and the link-oblivious RRP.
    assert!(best_pair < 1.0);
    assert!(best_pair <= panel.normalized(Algorithm::RoundRobinProc)[0] + 1e-9);
}

#[test]
fn fig2_makespan_robust_flows_fragile() {
    // "our algorithms are quite robust for makespan minimization problems,
    // but not as much for sum-flow or max-flow problems."
    let report = fig2::run(
        scale(),
        ArrivalProcess::UniformStream { load: 0.9 },
        Perturbation::linear(0.1),
    );
    let mut worst_makespan_dev = 0.0f64;
    let mut worst_flow_dev = 0.0f64;
    for row in &report.rows {
        worst_makespan_dev = worst_makespan_dev.max((row.ratio[0] - 1.0).abs());
        worst_flow_dev = worst_flow_dev
            .max((row.ratio[1] - 1.0).abs())
            .max((row.ratio[2] - 1.0).abs());
    }
    assert!(
        worst_makespan_dev < 0.15,
        "makespan deviation {worst_makespan_dev} should be small"
    );
    assert!(
        worst_flow_dev > worst_makespan_dev,
        "flow deviation ({worst_flow_dev}) should exceed makespan deviation ({worst_makespan_dev})"
    );
}
