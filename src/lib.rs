//! # master-slave-sched — facade crate
//!
//! Re-exports the full public API of the reproduction of Pineau, Robert &
//! Vivien, *"The impact of heterogeneity on master-slave on-line scheduling"*
//! (IPPS 2006 / INRIA RR-5732). See the README for a tour and `DESIGN.md`
//! for the system inventory.
//!
//! The workspace crates, in dependency order:
//!
//! * [`exact`] — exact rationals and quadratic surds (ℚ(√d)) used to verify
//!   the nine competitive-ratio lower bounds without floating point;
//! * [`sim`] — discrete-event simulator of the one-port master-slave model;
//! * [`core`] — platform/task/schedule model, the three objective functions,
//!   and the seven on-line heuristics of the paper's Section 4;
//! * [`opt`] — offline optimal machinery (exhaustive exact optimum,
//!   homogeneous closed forms, count optimizers);
//! * [`adversary`] — the nine lower-bound theorems as executable games;
//! * [`scenario`] — dynamic-platform scenarios: deterministic, seedable
//!   timelines of slave failures, recoveries, and link/speed drift;
//! * [`workload`] — platform generators, arrival processes, perturbations,
//!   and the Section 4.2 calibration procedure;
//! * [`cluster`] — a threaded master-worker executor with real
//!   matrix-determinant payloads (the MPI-testbed substitute);
//! * [`lab`] — the experiment harness that regenerates Table 1, Figures
//!   1(a–d) and Figure 2.

#![forbid(unsafe_code)]

pub use mss_adversary as adversary;
pub use mss_cluster as cluster;
pub use mss_core as core;
pub use mss_exact as exact;
pub use mss_lab as lab;
pub use mss_opt as opt;
pub use mss_scenario as scenario;
pub use mss_sim as sim;
pub use mss_workload as workload;
