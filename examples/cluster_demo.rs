//! Run the heuristics on the *threaded* cluster — the stand-in for the
//! paper's real 5-machine MPI platform — with genuine matrix-determinant
//! payloads, and cross-check the result against the discrete-event
//! simulator.
//!
//! Mirrors §4.2 end to end: a base platform is first *calibrated* towards a
//! target heterogeneity with the paper's `nc_i`/`np_i` repetition counts,
//! then 30 matrix tasks are scheduled by List Scheduling; every transfer
//! holds the master's one-port link and every worker really LU-factorizes
//! its matrices.
//!
//! ```sh
//! cargo run --release --example cluster_demo
//! ```

use master_slave_sched::cluster::{execute, validate_loose, ClusterConfig};
use master_slave_sched::core::{bag_of_tasks, simulate, Algorithm, Platform, SimConfig};
use master_slave_sched::workload::calibrate;

fn main() {
    // §4.2: probe the raw machines once, then repeat sends/computations to
    // reach the desired heterogeneity.
    let measured = Platform::from_vectors(&[0.25, 0.25, 0.25], &[0.5, 0.5, 0.5]);
    let target = Platform::from_vectors(&[0.25, 0.5, 1.0], &[1.0, 2.0, 4.0]);
    let cal = calibrate(&measured, &target);
    println!("calibration (paper §4.2):");
    for (j, _) in measured.iter() {
        println!(
            "  {j}: nc = {}, np = {}  ->  c = {:.2} s, p = {:.2} s",
            cal.nc[j.0],
            cal.np[j.0],
            cal.achieved.c(j),
            cal.achieved.p(j)
        );
    }
    println!(
        "  max relative error vs target: {:.1}%",
        cal.max_relative_error * 100.0
    );

    let platform = cal.achieved;
    let tasks = bag_of_tasks(30);

    // Reference run through the discrete-event simulator.
    let des = simulate(
        &platform,
        &tasks,
        &SimConfig::with_horizon(tasks.len()),
        &mut Algorithm::ListScheduling.build(),
    )
    .expect("DES run");

    // Real threads, real one-port blocking, real determinants. One model
    // second is scaled to 10 ms of wall time to keep the demo short.
    let config = ClusterConfig {
        time_scale: 0.01,
        matrix_dim: 32,
        horizon_hint: Some(tasks.len()),
    };
    let run = execute(
        &platform,
        &tasks,
        &config,
        &mut Algorithm::ListScheduling.build(),
    )
    .expect("cluster run");

    let problems = validate_loose(&run.trace, &platform, 0.25);
    assert!(
        problems.is_empty(),
        "cluster invariants violated: {problems:?}"
    );

    println!("\nLS on {} tasks:", tasks.len());
    println!("  DES      makespan: {:>8.3} model-s", des.makespan());
    println!(
        "  cluster  makespan: {:>8.3} model-s (wall/scale)",
        run.trace.makespan()
    );
    let agree = (0..tasks.len())
        .filter(|&i| {
            des.record(mss_core::TaskId(i)).slave == run.trace.record(mss_core::TaskId(i)).slave
        })
        .count();
    println!("  identical assignments: {agree}/{}", tasks.len());
    println!(
        "  sample determinants: {:?}",
        &run.determinants[..3.min(run.determinants.len())]
    );
    println!(
        "\nThe threaded cluster tracks the simulator's makespan to within OS\n\
         jitter; individual assignments may differ where LS faces near-ties."
    );
}
