//! Quickstart: schedule a bag of identical tasks on a heterogeneous
//! master-slave platform and compare the three objectives across the
//! paper's seven on-line heuristics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use master_slave_sched::core::{
    bag_of_tasks, simulate, validate, Algorithm, Objective, Platform, SimConfig,
};

fn main() {
    // A 4-slave platform: c_j = seconds to ship one task down slave j's
    // link, p_j = seconds for slave j to execute one task (one-port model:
    // the master performs at most one send at a time).
    // Compute-bound, as in the paper's experiments (p_j well above c_j);
    // on *port-bound* platforms (m·c ≈ p) even LS turns myopic — try
    // p = (1.0, 2.0, 0.5, 4.0) to see it lose to RRC.
    let platform = Platform::from_vectors(
        &[0.10, 0.25, 0.50, 0.75], // c_j
        &[2.00, 4.00, 1.00, 8.00], // p_j
    );
    println!(
        "platform: m = {}, class = {}",
        platform.num_slaves(),
        platform.classify()
    );

    // 200 identical tasks, all released at t = 0 (bag-of-tasks).
    let tasks = bag_of_tasks(200);
    let config = SimConfig::with_horizon(tasks.len());

    println!(
        "\n{:<8} {:>12} {:>12} {:>14}",
        "alg", "makespan", "max-flow", "sum-flow"
    );
    for algorithm in Algorithm::ALL {
        let mut scheduler = algorithm.build();
        let trace =
            simulate(&platform, &tasks, &config, &mut scheduler).expect("simulation completes");
        // Every trace is re-checked against the model invariants.
        assert!(validate(&trace, &platform).is_empty());
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>14.1}",
            algorithm.name(),
            Objective::Makespan.evaluate(&trace),
            Objective::MaxFlow.evaluate(&trace),
            Objective::SumFlow.evaluate(&trace),
        );
    }

    println!("\nThe plan-ahead and load-aware statics (LS, SLJF) lead, the RR family");
    println!("follows, and queue-less SRPT trails — the paper's Figure 1 ordering.");
}
