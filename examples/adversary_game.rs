//! Watch a lower-bound proof run as an executable game.
//!
//! Theorem 1 of the paper proves no deterministic on-line algorithm can be
//! better than 5/4-competitive for makespan on communication-homogeneous
//! platforms. This example plays that adversary against two real
//! schedulers and prints the full transcript: what the adversary observed,
//! which branch of the proof it took, and the exact competitive ratio the
//! algorithm was forced into.
//!
//! ```sh
//! cargo run --release --example adversary_game
//! ```

use master_slave_sched::adversary::{play, TheoremId};
use master_slave_sched::core::Algorithm;

fn main() {
    for algorithm in [Algorithm::ListScheduling, Algorithm::Srpt] {
        let factory = move || algorithm.build();
        let result = play(TheoremId::T1, &factory);

        println!("=== Theorem 1 adversary vs {} ===", algorithm.name());
        println!("platform: c = (1, 1), p = (3, 7)  —  communication-homogeneous");
        for line in &result.transcript {
            println!("  adversary: {line}");
        }
        println!(
            "  final instance: {} task(s), releases {:?}",
            result.instance.r.len(),
            result
                .instance
                .r
                .iter()
                .map(|r| r.to_f64())
                .collect::<Vec<_>>()
        );
        println!(
            "  {}'s makespan: {:.4}   offline optimum: {} (exact)",
            algorithm.name(),
            result.algorithm_value,
            result.optimal_value
        );
        println!(
            "  competitive ratio: {:.4}  >=  bound {} ≈ {:.4}   [{}]\n",
            result.ratio,
            result.info.bound,
            result.info.bound.to_f64(),
            if result.holds() {
                "verified"
            } else {
                "VIOLATED"
            }
        );
    }

    println!("Run `ms-lab table1` for all nine theorems against all seven heuristics.");
}
