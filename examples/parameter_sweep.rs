//! A parameter-sweep application on a heterogeneous grid — the workload the
//! paper's introduction motivates (APST-style bags of identical tasks
//! [10, 1]) — arriving as an on-line stream.
//!
//! A scientist submits batches of identical simulations over the day; the
//! master learns about each batch only when it arrives. We compare how the
//! seven heuristics hold up across increasing system load and print the
//! flow-time picture a user of the grid would care about.
//!
//! ```sh
//! cargo run --release --example parameter_sweep
//! ```

use master_slave_sched::core::{simulate, Algorithm, Objective, SimConfig};
use master_slave_sched::workload::{ArrivalProcess, PlatformSampler};
use mss_core::PlatformClass;

fn main() {
    // One random fully heterogeneous platform from the paper's §4.2
    // distribution (5 machines, c ∈ [0.01, 1], p ∈ [0.1, 8]).
    let platform = PlatformSampler::default()
        .sample_many(PlatformClass::Heterogeneous, 1, 2024)
        .remove(0);
    println!("grid platform (m = 5):");
    for (j, s) in platform.iter() {
        println!("  {j}: c = {:.3} s, p = {:.3} s", s.c, s.p);
    }

    let n = 400;
    for load in [0.5, 0.9, 1.2] {
        // Poisson batch arrivals targeting the given fraction of the
        // platform's steady-state throughput.
        let tasks = ArrivalProcess::Poisson { load }.generate(n, &platform, 7);
        let config = SimConfig::with_horizon(n);

        println!(
            "\nload ρ = {load}: {n} tasks over {:.0} s",
            tasks.last().unwrap().release.as_f64()
        );
        println!(
            "{:<8} {:>12} {:>14} {:>12}",
            "alg", "makespan", "mean flow", "max flow"
        );
        for algorithm in Algorithm::ALL {
            let trace = simulate(&platform, &tasks, &config, &mut algorithm.build())
                .expect("run completes");
            println!(
                "{:<8} {:>12.1} {:>14.2} {:>12.1}",
                algorithm.name(),
                Objective::Makespan.evaluate(&trace),
                Objective::SumFlow.evaluate(&trace) / n as f64,
                Objective::MaxFlow.evaluate(&trace),
            );
        }
    }

    println!(
        "\nAt high load the link-aware heuristics (RRC, SLJFWC) and the planned\n\
         SLJF keep mean flows bounded, while RRP — which orders slaves by speed\n\
         and ignores the links — drowns the master's port: the same 'take the\n\
         communication capacity into account' lesson as the paper's Figure 1."
    );
}
