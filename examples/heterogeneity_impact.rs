//! *The impact of heterogeneity*, quantified — the title question of the
//! paper as a curve instead of four bars.
//!
//! A family of platforms interpolates geometrically from fully homogeneous
//! (`h = 0`) to the paper's fully heterogeneous distribution (`h = 1`),
//! separately for links, speeds, and both. For each degree we run the six
//! static heuristics and report the spread between the best and the worst
//! of them (normalized to SRPT): on homogeneous platforms every reasonable
//! strategy coincides (the paper's intro — the problem is polynomial), and
//! the spread widens with heterogeneity exactly as the theory section's
//! rising lower bounds predict.
//!
//! ```sh
//! cargo run --release --example heterogeneity_impact
//! ```

use master_slave_sched::core::{bag_of_tasks, simulate, Algorithm, SimConfig};
use master_slave_sched::sim::{render_gantt, trace_stats};
use master_slave_sched::workload::{HeterogeneityAxis, HeterogeneityFamily};

fn main() {
    let report = master_slave_sched::lab::ablations::heterogeneity_impact(300, 3, 42);
    println!("{}", report.render());
    println!("cells are best/worst normalized makespan over the six static heuristics;");
    println!("a widening gap means choosing the right algorithm matters more.\n");

    // Zoom in on one fully heterogeneous platform: Gantt + utilization for
    // the best-in-class LS schedule.
    let family = HeterogeneityFamily::paper_ranges(5, 42);
    let platform = family.platform(HeterogeneityAxis::Both, 1.0);
    let tasks = bag_of_tasks(40);
    let trace = simulate(
        &platform,
        &tasks,
        &SimConfig::with_horizon(tasks.len()),
        &mut Algorithm::ListScheduling.build(),
    )
    .expect("run completes");

    println!("LS on one h = 1 platform, 40 tasks ('-' send, '#' compute):");
    println!("{}", render_gantt(&trace, &platform, 72));
    let stats = trace_stats(&trace, &platform);
    println!(
        "port busy {:.0}% of the makespan; slave utilizations: {}",
        stats.port_utilization * 100.0,
        stats
            .slaves
            .iter()
            .enumerate()
            .map(|(j, s)| format!("P{} {:.0}%", j + 1, s.utilization * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
