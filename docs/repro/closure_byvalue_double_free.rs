//! Pinned reproducer for the release-mode SIGABRT formerly hit by
//! `mss-core::heuristics::sljf::tests::replay_is_deterministic`.
//!
//! This file is NOT part of the workspace build. Compile it standalone:
//!
//! ```text
//! $ rustc -O closure_byvalue_double_free.rs -o repro && ./repro
//! free(): double free detected in tcache 2
//! Aborted (exit 134, SIGABRT)
//! $ rustc -C opt-level=1 closure_byvalue_double_free.rs -o repro && ./repro
//! ok
//! ```
//!
//! Root cause: a rustc/LLVM codegen bug (observed on rustc 1.95.0
//! x86_64-unknown-linux-gnu), not source-level UB — the workspace contains
//! zero `unsafe` code. The trigger requires *all* of:
//!
//!  1. a closure taking its argument BY VALUE (`|mut s: Planned| ...`),
//!     where the argument owns a heap allocation (`Option<Vec<u32>>`)
//!     populated during the call via a `&mut dyn Trait` method;
//!  2. the closure invoked at TWO call sites (a single call is fine);
//!  3. opt-level >= 2 (opt-level 1 is fine; LTO and codegen-units are
//!     irrelevant — the abort reproduces with LTO off / 16 CGUs).
//!
//! Any of these equivalent rewrites avoids the miscompile:
//!  - closure takes `&mut Planned` (the fix applied to the test),
//!  - a plain `fn` with the same by-value signature,
//!  - `std::mem::forget(s)` at closure exit (leaks, confirming the
//!    double-freed allocation is the parameter's plan Vec).

trait Sched {
    fn step(&mut self, n: usize) -> usize;
}

struct Planned {
    plan: Option<Vec<u32>>,
    next: usize,
}

impl Sched for Planned {
    fn step(&mut self, n: usize) -> usize {
        if self.plan.is_none() {
            self.plan = Some((0..n as u32).collect());
        }
        let p = self.plan.as_ref().unwrap();
        let v = p[self.next % p.len()] as usize;
        self.next += 1;
        v
    }
}

fn drive(n: usize, s: &mut dyn Sched) -> Vec<usize> {
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(s.step(n));
    }
    out
}

fn main() {
    let run = |mut s: Planned| drive(12, &mut s);
    let a = run(Planned { plan: None, next: 0 });
    let b = run(Planned { plan: None, next: 0 });
    assert_eq!(a, b);
    println!("ok");
}
